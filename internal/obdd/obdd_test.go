package obdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lapushdb/internal/exact"
)

func TestBuildBasics(t *testing.T) {
	probs := []float64{0.5, 0.4, 0.7}
	// F = X0·X1 ∨ X0·X2 (Example 7): P = 0.41.
	clauses := [][]int32{{0, 1}, {0, 2}}
	b, err := Build(clauses, FrequencyOrder(clauses), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Prob(probs); math.Abs(got-0.41) > 1e-12 {
		t.Errorf("P = %v, want 0.41", got)
	}
	// Reduced: a handful of nodes only.
	if b.Size() > 8 {
		t.Errorf("size = %d, expected a tiny reduced OBDD", b.Size())
	}
}

func TestBuildTrivial(t *testing.T) {
	b, err := Build(nil, nil, 100)
	if err != nil || b.Prob(nil) != 0 {
		t.Error("empty formula should be false")
	}
	b, err = Build([][]int32{{}}, nil, 100)
	if err != nil || b.Prob(nil) != 1 {
		t.Error("empty clause should be true")
	}
	// Duplicate variable inside a clause.
	b, err = Build([][]int32{{0, 0}}, []int32{0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Prob([]float64{0.3}); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("X·X = %v, want 0.3", got)
	}
}

func TestBuildMissingVariableInOrder(t *testing.T) {
	if _, err := Build([][]int32{{0, 1}}, []int32{0}, 100); err == nil {
		t.Error("missing variable in order should fail")
	}
}

func TestProbMatchesExactRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 200; iter++ {
		nvars := 1 + rng.Intn(10)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		var clauses [][]int32
		for i := 0; i < 1+rng.Intn(8); i++ {
			c := make([]int32, 1+rng.Intn(4))
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			clauses = append(clauses, c)
		}
		b, err := Build(clauses, FrequencyOrder(clauses), 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.Prob(clauses, probs)
		if got := b.Prob(probs); math.Abs(got-want) > 1e-9 {
			t.Fatalf("iter %d: OBDD %v, exact %v", iter, got, want)
		}
	}
}

func TestQuickAgainstExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 1 + rng.Intn(8)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		var clauses [][]int32
		for i := 0; i < rng.Intn(6); i++ {
			c := make([]int32, 1+rng.Intn(3))
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			clauses = append(clauses, c)
		}
		b, err := Build(clauses, FrequencyOrder(clauses), 10_000_000)
		if err != nil {
			return false
		}
		return math.Abs(b.Prob(probs)-exact.Prob(clauses, probs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestOrderSensitivity demonstrates the classic OBDD phenomenon the
// paper's related work hinges on: the formula
// x1·y1 ∨ x2·y2 ∨ ... has a linear OBDD when each pair is adjacent in
// the order, but an exponential one when all x's precede all y's.
func TestOrderSensitivity(t *testing.T) {
	n := 10
	var clauses [][]int32
	var interleaved, separated []int32
	for i := 0; i < n; i++ {
		x, y := int32(2*i), int32(2*i+1)
		clauses = append(clauses, []int32{x, y})
		interleaved = append(interleaved, x, y)
	}
	for i := 0; i < n; i++ {
		separated = append(separated, int32(2*i))
	}
	for i := 0; i < n; i++ {
		separated = append(separated, int32(2*i+1))
	}
	good, err := Build(clauses, interleaved, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Build(clauses, separated, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if good.Size() >= bad.Size() {
		t.Errorf("interleaved order (%d nodes) should beat separated order (%d nodes)", good.Size(), bad.Size())
	}
	if bad.Size() < 1<<(n/2) {
		t.Errorf("separated order should blow up: %d nodes", bad.Size())
	}
	// Both compute the same probability.
	probs := make([]float64, 2*n)
	for i := range probs {
		probs[i] = 0.5
	}
	if math.Abs(good.Prob(probs)-bad.Prob(probs)) > 1e-9 {
		t.Error("orders disagree on the probability")
	}
}

func TestBudget(t *testing.T) {
	n := 14
	var clauses [][]int32
	var separated []int32
	for i := 0; i < n; i++ {
		clauses = append(clauses, []int32{int32(2 * i), int32(2*i + 1)})
	}
	for i := 0; i < n; i++ {
		separated = append(separated, int32(2*i))
	}
	for i := 0; i < n; i++ {
		separated = append(separated, int32(2*i+1))
	}
	if _, err := Build(clauses, separated, 100); err != ErrTooLarge {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

func TestFrequencyOrder(t *testing.T) {
	clauses := [][]int32{{5, 1}, {5, 2}, {5, 3}, {1, 2}}
	order := FrequencyOrder(clauses)
	if order[0] != 5 {
		t.Errorf("most frequent variable should come first: %v", order)
	}
	if len(order) != 4 {
		t.Errorf("order = %v, want 4 distinct vars", order)
	}
}

func BenchmarkOBDDvsExact(b *testing.B) {
	rng := rand.New(rand.NewSource(82))
	nvars := 30
	var clauses [][]int32
	for i := 0; i < 25; i++ {
		clauses = append(clauses, []int32{int32(rng.Intn(nvars)), int32(rng.Intn(nvars)), int32(rng.Intn(nvars))})
	}
	probs := make([]float64, nvars)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	b.Run("obdd-build+prob", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bdd, err := Build(clauses, FrequencyOrder(clauses), 50_000_000)
			if err != nil {
				b.Fatal(err)
			}
			bdd.Prob(probs)
		}
	})
	b.Run("dpll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.Prob(clauses, probs)
		}
	})
}
