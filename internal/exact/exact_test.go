package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func TestProbBasics(t *testing.T) {
	probs := []float64{0.5, 0.4, 0.7}
	cases := []struct {
		name    string
		clauses [][]int32
		want    float64
	}{
		{"empty formula", nil, 0},
		{"empty clause", [][]int32{{}}, 1},
		{"single var", [][]int32{{0}}, 0.5},
		{"single clause", [][]int32{{0, 1}}, 0.2},
		{"two independent vars", [][]int32{{1}, {2}}, 1 - 0.6*0.3},
		// Example 7: F = XY ∨ XZ with p=0.5, q=0.4, r=0.7:
		// P = p(q + r − qr) = 0.5 * 0.82 = 0.41.
		{"example 7", [][]int32{{0, 1}, {0, 2}}, 0.41},
		// Absorption: X ∨ XY = X.
		{"absorption", [][]int32{{0}, {0, 1}}, 0.5},
		// Duplicate clause.
		{"duplicate", [][]int32{{0}, {0}}, 0.5},
		// Repeated variable inside a clause.
		{"repeated var", [][]int32{{1, 1}}, 0.4},
	}
	for _, c := range cases {
		if got := Prob(c.clauses, probs); math.Abs(got-c.want) > eps {
			t.Errorf("%s: Prob = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestProbMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		nvars := 1 + rng.Intn(10)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		nclauses := 1 + rng.Intn(8)
		clauses := make([][]int32, nclauses)
		for i := range clauses {
			width := 1 + rng.Intn(4)
			c := make([]int32, width)
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			clauses[i] = c
		}
		want := BruteForce(clauses, probs)
		got := Prob(clauses, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("iter %d: Prob = %v, brute force = %v, clauses = %v, probs = %v",
				iter, got, want, clauses, probs)
		}
	}
}

// TestProbQuick uses testing/quick to generate random small formulas and
// compares the solver against brute force.
func TestProbQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 1 + rng.Intn(8)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		nclauses := rng.Intn(6)
		clauses := make([][]int32, nclauses)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]int32, width)
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			clauses[i] = c
		}
		return math.Abs(Prob(clauses, probs)-BruteForce(clauses, probs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestProbMonotone: adding a clause never decreases the probability of a
// monotone DNF.
func TestProbMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 2 + rng.Intn(8)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		var clauses [][]int32
		prev := 0.0
		for i := 0; i < 5; i++ {
			width := 1 + rng.Intn(3)
			c := make([]int32, width)
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			clauses = append(clauses, c)
			p := Prob(clauses, probs)
			if p < prev-1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDissociationUpperBound is Theorem 8 at the formula level: replacing
// occurrences of a variable in different clauses with fresh independent
// copies never decreases the probability.
func TestDissociationUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 2 + rng.Intn(6)
		probs := make([]float64, nvars, nvars+8)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		nclauses := 2 + rng.Intn(5)
		clauses := make([][]int32, nclauses)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]int32, 0, width)
			seen := map[int32]bool{}
			for j := 0; j < width; j++ {
				v := int32(rng.Intn(nvars))
				if !seen[v] {
					seen[v] = true
					c = append(c, v)
				}
			}
			clauses[i] = c
		}
		base := Prob(clauses, probs)
		// Dissociate variable 0: each clause containing it gets a fresh
		// copy with the same probability (no two copies share a clause,
		// satisfying Theorem 8's condition).
		dis := make([][]int32, len(clauses))
		dprobs := probs
		for i, c := range clauses {
			nc := append([]int32(nil), c...)
			for j, v := range nc {
				if v == 0 {
					fresh := int32(len(dprobs))
					dprobs = append(dprobs, probs[0])
					nc[j] = fresh
				}
			}
			dis[i] = nc
		}
		return Prob(dis, dprobs) >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicDissociationExact is Theorem 8(2): dissociating a
// variable with probability 0 or 1 does not change the probability.
func TestDeterministicDissociationExact(t *testing.T) {
	for _, p0 := range []float64{0, 1} {
		probs := []float64{p0, 0.3, 0.8, p0}
		f := [][]int32{{0, 1}, {0, 2}}
		fd := [][]int32{{0, 1}, {3, 2}} // variable 0 dissociated into 0 and 3
		if math.Abs(Prob(f, probs)-Prob(fd, probs)) > eps {
			t.Errorf("p0 = %v: dissociation changed probability", p0)
		}
	}
}

func TestProbBudget(t *testing.T) {
	// A formula engineered to exceed a tiny budget.
	rng := rand.New(rand.NewSource(7))
	nvars := 30
	probs := make([]float64, nvars)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	var clauses [][]int32
	for i := 0; i < 40; i++ {
		c := []int32{int32(rng.Intn(nvars)), int32(rng.Intn(nvars)), int32(rng.Intn(nvars))}
		clauses = append(clauses, c)
	}
	if _, err := ProbBudget(clauses, probs, 3); err != ErrBudget {
		t.Errorf("expected ErrBudget, got %v", err)
	}
	// A generous budget succeeds and matches an unconstrained run.
	p1, err := ProbBudget(clauses, probs, 10_000_000)
	if err != nil {
		t.Fatalf("budget run failed: %v", err)
	}
	if math.Abs(p1-Prob(clauses, probs)) > eps {
		t.Error("budgeted result differs")
	}
}

func TestLargeReadOnceFormulaFast(t *testing.T) {
	// A read-once formula (all clauses disjoint) with 10k clauses must be
	// handled by component decomposition without Shannon blowup.
	n := 10000
	probs := make([]float64, 2*n)
	clauses := make([][]int32, n)
	miss := 1.0
	for i := 0; i < n; i++ {
		probs[2*i], probs[2*i+1] = 0.01, 0.5
		clauses[i] = []int32{int32(2 * i), int32(2*i + 1)}
		miss *= 1 - 0.005
	}
	got := Prob(clauses, probs)
	want := 1 - miss
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Prob = %v, want %v", got, want)
	}
}

// TestSolverOptionsAgree: disabling individual techniques never changes
// the result, only the cost.
func TestSolverOptionsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		nvars := 2 + rng.Intn(8)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		var clauses [][]int32
		for i := 0; i < 1+rng.Intn(6); i++ {
			c := make([]int32, 1+rng.Intn(3))
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			clauses = append(clauses, c)
		}
		want := Prob(clauses, probs)
		for _, opts := range []SolverOptions{
			{NoReadOnce: true},
			{NoComponents: true},
			{NoMemo: true},
			{NoReadOnce: true, NoComponents: true, NoMemo: true},
		} {
			got, err := ProbWith(clauses, probs, 50_000_000, opts)
			if err != nil {
				t.Fatalf("opts %+v: %v", opts, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("opts %+v: %v != %v", opts, got, want)
			}
		}
	}
}
