// Package exact computes exact probabilities of monotone DNF lineage
// formulas — the ground truth role SampleSearch plays in the paper's
// experiments.
//
// The algorithm is a DPLL-style weighted model counter specialized to
// monotone DNF: absorption pruning, independent-component decomposition
// (variables not sharing clauses multiply as independent events), Shannon
// expansion on the most frequent variable, and memoization on the
// canonical formula. Like all exact methods its cost grows with the
// treewidth of the lineage, which is precisely the scaling limitation the
// paper's Figures 5e–5h demonstrate.
package exact

import (
	"fmt"
	"sort"

	"lapushdb/internal/lineage"
)

// ErrBudget is returned by ProbBudget when the node budget is exhausted.
var ErrBudget = fmt.Errorf("exact: node budget exhausted")

// Prob computes the probability that the monotone DNF formula (a
// disjunction of conjunctions of variable ids) is true when variable i is
// independently true with probability probs[i]. An empty formula is
// false; an empty clause is true. Panics if the formula needs more than
// ~50M recursion nodes — use ProbBudget for bounded attempts.
func Prob(clauses [][]int32, probs []float64) float64 {
	p, err := ProbBudget(clauses, probs, 50_000_000)
	if err != nil {
		panic(err)
	}
	return p
}

// readOnceVarLimit bounds the read-once factorization attempt: its
// complement-components step is quadratic in the variable count.
const readOnceVarLimit = 2048

// SolverOptions disables individual solver techniques, for ablation
// benchmarks and tests. The zero value enables everything.
type SolverOptions struct {
	// NoReadOnce skips the read-once factorization fast path.
	NoReadOnce bool
	// NoComponents disables independent-component decomposition.
	NoComponents bool
	// NoMemo disables formula memoization.
	NoMemo bool
}

// ProbBudget is Prob with an explicit bound on the number of recursion
// nodes; it returns ErrBudget when exceeded, which experiment harnesses
// treat as "exact inference infeasible" (the paper's missing
// SampleSearch data points).
func ProbBudget(clauses [][]int32, probs []float64, budget int) (float64, error) {
	return ProbWith(clauses, probs, budget, SolverOptions{})
}

// ProbWith is ProbBudget with explicit solver options.
func ProbWith(clauses [][]int32, probs []float64, budget int, opts SolverOptions) (float64, error) {
	f := normalize(clauses)
	// Fast path: read-once formulas (the data-level tractable cases of
	// Sen et al. / Roy et al.) have linear-time exact probability.
	if !opts.NoReadOnce {
		if nv := countVars(f); nv <= readOnceVarLimit {
			if tree, ok := lineage.Factor(lineage.DNF(f)); ok {
				return tree.Prob(probs), nil
			}
		}
	}
	s := &solver{probs: probs, budget: budget, opts: opts}
	if !opts.NoMemo {
		s.memo = map[string]float64{}
	}
	p, ok := s.prob(f)
	if !ok {
		return 0, ErrBudget
	}
	return p, nil
}

func countVars(clauses [][]int32) int {
	seen := map[int32]bool{}
	for _, c := range clauses {
		for _, v := range c {
			seen[v] = true
		}
	}
	return len(seen)
}

type solver struct {
	probs  []float64
	memo   map[string]float64
	budget int
	opts   SolverOptions
}

// normalize sorts each clause, removes duplicate variables, sorts the
// clause list, and applies absorption (a clause that is a superset of
// another is redundant in a monotone DNF).
func normalize(clauses [][]int32) [][]int32 {
	norm := make([][]int32, 0, len(clauses))
	for _, c := range clauses {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		uniq := cc[:0]
		for i, v := range cc {
			if i == 0 || cc[i-1] != v {
				uniq = append(uniq, v)
			}
		}
		norm = append(norm, uniq)
	}
	sort.Slice(norm, func(i, j int) bool { return clauseLess(norm[i], norm[j]) })
	// Dedup identical clauses.
	dedup := norm[:0]
	for i, c := range norm {
		if i == 0 || !clauseEqual(norm[i-1], c) {
			dedup = append(dedup, c)
		}
	}
	return absorb(dedup)
}

// absorb removes clauses that are supersets of other clauses. Quadratic
// in the worst case but pruned by sorting on length.
func absorb(clauses [][]int32) [][]int32 {
	byLen := append([][]int32(nil), clauses...)
	sort.Slice(byLen, func(i, j int) bool { return len(byLen[i]) < len(byLen[j]) })
	var kept [][]int32
	for _, c := range byLen {
		absorbed := false
		for _, k := range kept {
			if isSubset(k, c) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return clauseLess(kept[i], kept[j]) })
	return kept
}

// prob returns the probability of a normalized formula, or ok=false if
// the budget ran out.
func (s *solver) prob(clauses [][]int32) (float64, bool) {
	if s.budget <= 0 {
		return 0, false
	}
	s.budget--
	if len(clauses) == 0 {
		return 0, true
	}
	if len(clauses[0]) == 0 {
		return 1, true // empty clause: formula is true
	}
	if len(clauses) == 1 {
		p := 1.0
		for _, v := range clauses[0] {
			p *= s.probs[v]
		}
		return p, true
	}
	var key string
	if s.memo != nil {
		key = encode(clauses)
		if p, ok := s.memo[key]; ok {
			return p, true
		}
	}
	memoize := func(p float64) {
		if s.memo != nil {
			s.memo[key] = p
		}
	}
	// Independent-component decomposition: clauses not sharing variables
	// form independent subformulas F1 ∨ F2, so
	// P(F) = 1 − (1 − P(F1))(1 − P(F2)).
	comps := components(clauses)
	if !s.opts.NoComponents && len(comps) > 1 {
		miss := 1.0
		for _, comp := range comps {
			p, ok := s.prob(comp)
			if !ok {
				return 0, false
			}
			miss *= 1 - p
		}
		p := 1 - miss
		memoize(p)
		return p, true
	}
	// Shannon expansion on the most frequent variable.
	v := mostFrequent(clauses)
	pv := s.probs[v]
	pTrue, ok := s.prob(condition(clauses, v, true))
	if !ok {
		return 0, false
	}
	pFalse, ok := s.prob(condition(clauses, v, false))
	if !ok {
		return 0, false
	}
	p := pv*pTrue + (1-pv)*pFalse
	memoize(p)
	return p, true
}

// components splits the clause set into groups with disjoint variables.
func components(clauses [][]int32) [][][]int32 {
	parent := make([]int, len(clauses))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	owner := map[int32]int{}
	for i, c := range clauses {
		for _, v := range c {
			if j, ok := owner[v]; ok {
				parent[find(i)] = find(j)
			} else {
				owner[v] = i
			}
		}
	}
	groups := map[int][][]int32{}
	var order []int
	for i, c := range clauses {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], c)
	}
	out := make([][][]int32, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// mostFrequent returns the variable occurring in the most clauses.
func mostFrequent(clauses [][]int32) int32 {
	count := map[int32]int{}
	var best int32
	bestN := -1
	for _, c := range clauses {
		for _, v := range c {
			count[v]++
			if count[v] > bestN || (count[v] == bestN && v < best) {
				best, bestN = v, count[v]
			}
		}
	}
	return best
}

// condition sets variable v to the given truth value: when true, v is
// removed from every clause (a now-empty clause makes the formula true);
// when false, clauses containing v are dropped. The result is
// re-absorbed.
func condition(clauses [][]int32, v int32, value bool) [][]int32 {
	var out [][]int32
	for _, c := range clauses {
		idx := -1
		for i, x := range c {
			if x == v {
				idx = i
				break
			}
		}
		if idx < 0 {
			out = append(out, c)
			continue
		}
		if !value {
			continue
		}
		nc := make([]int32, 0, len(c)-1)
		nc = append(nc, c[:idx]...)
		nc = append(nc, c[idx+1:]...)
		if len(nc) == 0 {
			return [][]int32{{}} // formula is true
		}
		out = append(out, nc)
	}
	return absorb(out)
}

func encode(clauses [][]int32) string {
	n := 0
	for _, c := range clauses {
		n += len(c) + 1
	}
	b := make([]byte, 0, n*4)
	for _, c := range clauses {
		for _, v := range c {
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		b = append(b, 0xff, 0xff, 0xff, 0xfe)
	}
	return string(b)
}

func clauseLess(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func clauseEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []int32) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

// BruteForce enumerates all possible worlds of the formula's variables —
// exponential, usable up to ~20 variables — and is the independent oracle
// for property tests.
func BruteForce(clauses [][]int32, probs []float64) float64 {
	vars := map[int32]bool{}
	for _, c := range clauses {
		for _, v := range c {
			vars[v] = true
		}
	}
	ids := make([]int32, 0, len(vars))
	for v := range vars {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > 24 {
		panic("exact: too many variables for brute force")
	}
	// An empty clause means "true".
	for _, c := range clauses {
		if len(c) == 0 {
			return 1
		}
	}
	total := 0.0
	for world := 0; world < 1<<uint(len(ids)); world++ {
		wp := 1.0
		truth := map[int32]bool{}
		for i, v := range ids {
			t := world&(1<<uint(i)) != 0
			truth[v] = t
			if t {
				wp *= probs[v]
			} else {
				wp *= 1 - probs[v]
			}
		}
		sat := false
		for _, c := range clauses {
			all := true
			for _, v := range c {
				if !truth[v] {
					all = false
					break
				}
			}
			if all {
				sat = true
				break
			}
		}
		if sat {
			total += wp
		}
	}
	return total
}
