package exact

import (
	"fmt"

	"lapushdb/internal/lineage"
)

// Circuit is an arithmetic circuit compiled from a monotone DNF by the
// solver's trace — the knowledge-compilation view of exact inference
// (the FO-d-DNNF circuits of Van den Broeck et al. that the paper's
// related work connects to safe plans). Compiling once and re-evaluating
// under different probability vectors is linear in the circuit size,
// which pays off when the same lineage is scored repeatedly (e.g. the
// probability-scaling experiments of Figures 5n–5p).
//
// Node kinds mirror the solver's decomposition steps: independent-OR
// for component splits, products for clauses, and Shannon gates for
// variable conditioning. Memoized subformulas become shared nodes, so
// the circuit is a DAG.
type Circuit struct {
	nodes []cnode
	// root is the index of the output node.
	root int32
}

type ckind uint8

const (
	cConst ckind = iota
	cVar
	cProduct // ∏ children (independent AND)
	cIndepOr // 1 − ∏ (1 − child) (independent OR)
	cShannon // p(v)·hi + (1 − p(v))·lo
)

type cnode struct {
	kind     ckind
	v        int32 // cVar / cShannon variable
	val      float64
	children []int32 // cProduct / cIndepOr; for cShannon: [hi, lo]
}

// Size returns the number of circuit nodes.
func (c *Circuit) Size() int { return len(c.nodes) }

// Eval computes the circuit's probability under the given variable
// probabilities, in one bottom-up pass.
func (c *Circuit) Eval(probs []float64) float64 {
	vals := make([]float64, len(c.nodes))
	for i, n := range c.nodes {
		switch n.kind {
		case cConst:
			vals[i] = n.val
		case cVar:
			vals[i] = probs[n.v]
		case cProduct:
			p := 1.0
			for _, ch := range n.children {
				p *= vals[ch]
			}
			vals[i] = p
		case cIndepOr:
			miss := 1.0
			for _, ch := range n.children {
				miss *= 1 - vals[ch]
			}
			vals[i] = 1 - miss
		case cShannon:
			pv := probs[n.v]
			vals[i] = pv*vals[n.children[0]] + (1-pv)*vals[n.children[1]]
		}
	}
	return vals[c.root]
}

// Compile builds a circuit for the monotone DNF within the given node
// budget; ErrBudget when exceeded. The circuit's Eval agrees exactly
// with ProbBudget for every probability vector.
func Compile(clauses [][]int32, budget int) (*Circuit, error) {
	f := normalize(clauses)
	c := &Circuit{}
	b := &circuitBuilder{c: c, memo: map[string]int32{}, budget: budget}
	// Read-once fast path: the factorization tree maps directly onto
	// circuit gates.
	if nv := countVars(f); nv <= readOnceVarLimit {
		if tree, ok := lineage.Factor(lineage.DNF(f)); ok {
			c.root = b.fromTree(tree)
			return c, nil
		}
	}
	root, ok := b.build(f)
	if !ok {
		return nil, ErrBudget
	}
	c.root = root
	return c, nil
}

type circuitBuilder struct {
	c      *Circuit
	memo   map[string]int32
	budget int
}

func (b *circuitBuilder) add(n cnode) int32 {
	b.c.nodes = append(b.c.nodes, n)
	return int32(len(b.c.nodes) - 1)
}

func (b *circuitBuilder) constNode(v float64) int32 { return b.add(cnode{kind: cConst, val: v}) }

func (b *circuitBuilder) fromTree(t *lineage.Tree) int32 {
	switch t.Kind {
	case lineage.TreeVar:
		return b.add(cnode{kind: cVar, v: t.Var})
	case lineage.TreeTrue:
		return b.constNode(1)
	case lineage.TreeFalse:
		return b.constNode(0)
	case lineage.TreeAnd, lineage.TreeOr:
		children := make([]int32, len(t.Children))
		for i, ch := range t.Children {
			children[i] = b.fromTree(ch)
		}
		kind := cProduct
		if t.Kind == lineage.TreeOr {
			kind = cIndepOr
		}
		return b.add(cnode{kind: kind, children: children})
	default:
		panic(fmt.Sprintf("exact: unknown tree kind %d", t.Kind))
	}
}

// build mirrors solver.prob but emits circuit nodes instead of numbers.
func (b *circuitBuilder) build(clauses [][]int32) (int32, bool) {
	if b.budget <= 0 {
		return 0, false
	}
	b.budget--
	if len(clauses) == 0 {
		return b.constNode(0), true
	}
	if len(clauses[0]) == 0 {
		return b.constNode(1), true
	}
	if len(clauses) == 1 {
		children := make([]int32, len(clauses[0]))
		for i, v := range clauses[0] {
			children[i] = b.add(cnode{kind: cVar, v: v})
		}
		if len(children) == 1 {
			return children[0], true
		}
		return b.add(cnode{kind: cProduct, children: children}), true
	}
	key := encode(clauses)
	if id, ok := b.memo[key]; ok {
		return id, true
	}
	comps := components(clauses)
	if len(comps) > 1 {
		children := make([]int32, len(comps))
		for i, comp := range comps {
			id, ok := b.build(comp)
			if !ok {
				return 0, false
			}
			children[i] = id
		}
		id := b.add(cnode{kind: cIndepOr, children: children})
		b.memo[key] = id
		return id, true
	}
	v := mostFrequent(clauses)
	hi, ok := b.build(condition(clauses, v, true))
	if !ok {
		return 0, false
	}
	lo, ok := b.build(condition(clauses, v, false))
	if !ok {
		return 0, false
	}
	id := b.add(cnode{kind: cShannon, v: v, children: []int32{hi, lo}})
	b.memo[key] = id
	return id, true
}
