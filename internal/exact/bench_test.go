package exact

import (
	"math/rand"
	"testing"
)

// randomDNF builds a DNF with the given number of variables and clauses.
func randomDNF(nvars, nclauses, width int, rng *rand.Rand) ([][]int32, []float64) {
	probs := make([]float64, nvars)
	for i := range probs {
		probs[i] = rng.Float64() * 0.5
	}
	clauses := make([][]int32, nclauses)
	for i := range clauses {
		c := make([]int32, width)
		for j := range c {
			c[j] = int32(rng.Intn(nvars))
		}
		clauses[i] = c
	}
	return clauses, probs
}

func BenchmarkProbSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	clauses, probs := randomDNF(20, 15, 3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prob(clauses, probs)
	}
}

func BenchmarkProbMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	clauses, probs := randomDNF(60, 40, 3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProbBudget(clauses, probs, 10_000_000); err != nil {
			b.Skip("budget exceeded")
		}
	}
}

func BenchmarkProbReadOnce(b *testing.B) {
	// Disjoint clauses: component decomposition keeps this linear.
	n := 2000
	probs := make([]float64, 2*n)
	clauses := make([][]int32, n)
	for i := 0; i < n; i++ {
		probs[2*i], probs[2*i+1] = 0.1, 0.5
		clauses[i] = []int32{int32(2 * i), int32(2*i + 1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prob(clauses, probs)
	}
}

// BenchmarkAblation quantifies the solver's design choices on a chain-
// shaped lineage (the structure dissociation queries produce).
func BenchmarkAblation(b *testing.B) {
	// Chain lineage: clauses {x_i, y_i, x_{i+1}} share variables with
	// neighbors only — component decomposition cannot split it, but
	// memoization collapses the Shannon recursion.
	n := 14
	var clauses [][]int32
	probs := make([]float64, 2*n+2)
	for i := range probs {
		probs[i] = 0.3
	}
	for i := 0; i < n; i++ {
		clauses = append(clauses, []int32{int32(2 * i), int32(2*i + 1), int32(2*i + 2)})
	}
	for _, c := range []struct {
		name string
		opts SolverOptions
	}{
		{"full", SolverOptions{}},
		{"no-readonce", SolverOptions{NoReadOnce: true}},
		{"no-memo", SolverOptions{NoReadOnce: true, NoMemo: true}},
		{"no-components", SolverOptions{NoReadOnce: true, NoComponents: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ProbWith(clauses, probs, 100_000_000, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
