package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCircuitMatchesProb(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 100; iter++ {
		nvars := 2 + rng.Intn(10)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		var clauses [][]int32
		for i := 0; i < 1+rng.Intn(8); i++ {
			c := make([]int32, 1+rng.Intn(4))
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			clauses = append(clauses, c)
		}
		circ, err := Compile(clauses, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		got := circ.Eval(probs)
		want := Prob(clauses, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("iter %d: circuit %v, prob %v", iter, got, want)
		}
	}
}

// TestCircuitReuseAcrossProbabilities is the point of compilation: one
// circuit evaluated under many probability vectors (the scaling
// experiments' workload) always agrees with from-scratch inference.
func TestCircuitReuseAcrossProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	nvars := 12
	var clauses [][]int32
	for i := 0; i < 10; i++ {
		c := []int32{int32(rng.Intn(nvars)), int32(rng.Intn(nvars)), int32(rng.Intn(nvars))}
		clauses = append(clauses, c)
	}
	circ, err := Compile(clauses, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, nvars)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	for _, f := range []float64{1, 0.5, 0.1, 0.01} {
		scaled := make([]float64, nvars)
		for i := range scaled {
			scaled[i] = probs[i] * f
		}
		got := circ.Eval(scaled)
		want := Prob(clauses, scaled)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("f=%v: circuit %v, prob %v", f, got, want)
		}
	}
}

func TestCircuitQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 1 + rng.Intn(8)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		var clauses [][]int32
		for i := 0; i < rng.Intn(6); i++ {
			c := make([]int32, 1+rng.Intn(3))
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			clauses = append(clauses, c)
		}
		circ, err := Compile(clauses, 10_000_000)
		if err != nil {
			return false
		}
		return math.Abs(circ.Eval(probs)-Prob(clauses, probs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCircuitTrivial(t *testing.T) {
	circ, err := Compile(nil, 1000)
	if err != nil || circ.Eval(nil) != 0 {
		t.Error("empty formula should compile to constant 0")
	}
	circ, err = Compile([][]int32{{}}, 1000)
	if err != nil || circ.Eval(nil) != 1 {
		t.Error("true formula should compile to constant 1")
	}
	circ, err = Compile([][]int32{{3}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := circ.Eval([]float64{0, 0, 0, 0.7}); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("single var = %v", got)
	}
}

func TestCircuitBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	nvars := 40
	var clauses [][]int32
	for i := 0; i < 60; i++ {
		c := []int32{int32(rng.Intn(nvars)), int32(rng.Intn(nvars)), int32(rng.Intn(nvars))}
		clauses = append(clauses, c)
	}
	if _, err := Compile(clauses, 2); err != ErrBudget {
		t.Errorf("expected ErrBudget, got %v", err)
	}
}

// TestCircuitSharing: memoized subformulas appear once, so the circuit
// is smaller than the raw Shannon tree.
func TestCircuitSharing(t *testing.T) {
	// A chain lineage has exponentially many Shannon paths but a
	// linear-ish shared circuit.
	n := 12
	var clauses [][]int32
	for i := 0; i < n; i++ {
		clauses = append(clauses, []int32{int32(2 * i), int32(2*i + 1), int32(2*i + 2)})
	}
	circ, err := Compile(clauses, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if circ.Size() > 4000 {
		t.Errorf("circuit size %d suggests no sharing", circ.Size())
	}
	probs := make([]float64, 2*n+2)
	for i := range probs {
		probs[i] = 0.3
	}
	if math.Abs(circ.Eval(probs)-Prob(clauses, probs)) > 1e-9 {
		t.Error("shared circuit disagrees with solver")
	}
}

func BenchmarkCircuitReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(64))
	nvars := 24
	var clauses [][]int32
	for i := 0; i < 20; i++ {
		c := []int32{int32(rng.Intn(nvars)), int32(rng.Intn(nvars)), int32(rng.Intn(nvars))}
		clauses = append(clauses, c)
	}
	probs := make([]float64, nvars)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	b.Run("compile-once-eval", func(b *testing.B) {
		circ, err := Compile(clauses, 50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			circ.Eval(probs)
		}
	})
	b.Run("solve-from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Prob(clauses, probs)
		}
	})
}
