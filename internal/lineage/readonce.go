package lineage

import (
	"fmt"
	"strings"
)

// Tree is a read-once factorization of a monotone DNF: a formula tree in
// which every variable occurs exactly once, so the probability is
// computable bottom-up in linear time (independent AND/OR).
type Tree struct {
	// Kind is one of TreeVar, TreeAnd, TreeOr, TreeTrue, TreeFalse.
	Kind TreeKind
	// Var is the variable id for TreeVar leaves.
	Var int32
	// Children are the subtrees of TreeAnd / TreeOr nodes.
	Children []*Tree
}

// TreeKind enumerates read-once tree node kinds.
type TreeKind int

// Tree node kinds.
const (
	TreeVar TreeKind = iota
	TreeAnd
	TreeOr
	TreeTrue
	TreeFalse
)

// Prob evaluates the tree's probability: AND multiplies (children are
// variable-disjoint, hence independent), OR combines as independent
// events.
func (t *Tree) Prob(probs []float64) float64 {
	switch t.Kind {
	case TreeVar:
		return probs[t.Var]
	case TreeTrue:
		return 1
	case TreeFalse:
		return 0
	case TreeAnd:
		p := 1.0
		for _, c := range t.Children {
			p *= c.Prob(probs)
		}
		return p
	case TreeOr:
		miss := 1.0
		for _, c := range t.Children {
			miss *= 1 - c.Prob(probs)
		}
		return 1 - miss
	default:
		panic("lineage: unknown tree kind")
	}
}

// String renders the factorization, e.g. "x0·(x1 + x2)".
func (t *Tree) String() string {
	switch t.Kind {
	case TreeVar:
		return fmt.Sprintf("x%d", t.Var)
	case TreeTrue:
		return "true"
	case TreeFalse:
		return "false"
	case TreeAnd:
		parts := make([]string, len(t.Children))
		for i, c := range t.Children {
			s := c.String()
			if c.Kind == TreeOr {
				s = "(" + s + ")"
			}
			parts[i] = s
		}
		return strings.Join(parts, "·")
	case TreeOr:
		parts := make([]string, len(t.Children))
		for i, c := range t.Children {
			parts[i] = c.String()
		}
		return strings.Join(parts, " + ")
	default:
		panic("lineage: unknown tree kind")
	}
}

// VarCount returns the number of variable leaves (each variable occurs
// exactly once in a read-once tree).
func (t *Tree) VarCount() int {
	switch t.Kind {
	case TreeVar:
		return 1
	case TreeAnd, TreeOr:
		n := 0
		for _, c := range t.Children {
			n += c.VarCount()
		}
		return n
	default:
		return 0
	}
}

// Factor attempts a read-once factorization of the formula. It returns
// (tree, true) iff the normalized formula is read-once. The recursion
// alternates two decompositions:
//
//   - OR: clauses sharing no variables split into independent
//     subformulas (connected components of the clause graph);
//   - AND: within one component, the variable set may split into groups
//     V1, ..., Vk such that the clause set is exactly the cartesian
//     product of its projections onto the groups — then
//     F = F|V1 ∧ ... ∧ F|Vk. The candidate groups are the connected
//     components of the complement of the variable co-occurrence graph.
//
// If a connected component admits no AND split and is not a single
// variable, the formula is not read-once.
func Factor(f DNF) (*Tree, bool) {
	n := f.Normalize()
	if len(n) == 0 {
		return &Tree{Kind: TreeFalse}, true
	}
	if n.IsTrue() {
		return &Tree{Kind: TreeTrue}, true
	}
	return factor(n)
}

func factor(f DNF) (*Tree, bool) {
	if len(f) == 1 {
		// Single clause: AND of its variables.
		c := f[0]
		if len(c) == 1 {
			return &Tree{Kind: TreeVar, Var: c[0]}, true
		}
		t := &Tree{Kind: TreeAnd}
		for _, v := range c {
			t.Children = append(t.Children, &Tree{Kind: TreeVar, Var: v})
		}
		return t, true
	}
	// OR decomposition: split clauses into variable-disjoint groups.
	comps := orComponents(f)
	if len(comps) > 1 {
		t := &Tree{Kind: TreeOr}
		for _, comp := range comps {
			sub, ok := factor(comp)
			if !ok {
				return nil, false
			}
			t.Children = append(t.Children, sub)
		}
		return t, true
	}
	// AND decomposition within one connected component.
	groups := complementComponents(f)
	if len(groups) <= 1 {
		return nil, false // connected co-occurrence complement: not read-once here
	}
	// Project the clauses onto each variable group and verify the
	// cartesian-product structure.
	var projs []DNF
	product := 1
	for _, g := range groups {
		proj := project(f, g)
		projs = append(projs, proj)
		product *= len(proj)
		if product > len(f) {
			return nil, false
		}
	}
	if product != len(f) {
		return nil, false
	}
	if !cartesianEqual(f, projs) {
		return nil, false
	}
	t := &Tree{Kind: TreeAnd}
	for _, proj := range projs {
		sub, ok := factor(proj)
		if !ok {
			return nil, false
		}
		t.Children = append(t.Children, sub)
	}
	return t, true
}

// orComponents groups clauses into connected components by shared
// variables.
func orComponents(f DNF) []DNF {
	parent := make([]int, len(f))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	owner := map[int32]int{}
	for i, c := range f {
		for _, v := range c {
			if j, ok := owner[v]; ok {
				parent[find(i)] = find(j)
			} else {
				owner[v] = i
			}
		}
	}
	groups := map[int]DNF{}
	var order []int
	for i, c := range f {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], c)
	}
	out := make([]DNF, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// complementComponents returns the connected components of the
// complement of the variable co-occurrence graph: two variables are
// joined when they do NOT share any clause. For read-once AND
// decompositions these components are exactly the candidate variable
// groups.
func complementComponents(f DNF) [][]int32 {
	vars := f.Vars()
	idx := map[int32]int{}
	for i, v := range vars {
		idx[v] = i
	}
	n := len(vars)
	co := make([]map[int]bool, n)
	for i := range co {
		co[i] = map[int]bool{}
	}
	for _, c := range f {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				a, b := idx[c[i]], idx[c[j]]
				co[a][b] = true
				co[b][a] = true
			}
		}
	}
	// Union-find over the complement: connect every pair NOT
	// co-occurring. Quadratic in the variable count, which is bounded by
	// the formula size.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !co[i][j] {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int32{}
	var order []int
	for i, v := range vars {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], v)
	}
	out := make([][]int32, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// project restricts every clause to the variable group, deduplicating.
func project(f DNF, group []int32) DNF {
	in := map[int32]bool{}
	for _, v := range group {
		in[v] = true
	}
	seen := map[string]bool{}
	var out DNF
	for _, c := range f {
		var p []int32
		for _, v := range c {
			if in[v] {
				p = append(p, v)
			}
		}
		key := clauseKey(p)
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}

// cartesianEqual verifies that the clause set equals the cartesian
// product of the projections (each clause decomposes into one projected
// clause per group, and all combinations occur — guaranteed by the
// count check plus membership of every original clause).
func cartesianEqual(f DNF, projs []DNF) bool {
	// Index each projection's clauses.
	sets := make([]map[string]bool, len(projs))
	for i, p := range projs {
		sets[i] = map[string]bool{}
		for _, c := range p {
			sets[i][clauseKey(c)] = true
		}
	}
	groups := make([]map[int32]int, len(projs))
	for i, p := range projs {
		groups[i] = map[int32]int{}
		for _, c := range p {
			for _, v := range c {
				groups[i][v] = 1
			}
		}
	}
	for _, c := range f {
		parts := make([][]int32, len(projs))
		for _, v := range c {
			placed := false
			for i := range groups {
				if _, ok := groups[i][v]; ok {
					parts[i] = append(parts[i], v)
					placed = true
					break
				}
			}
			if !placed {
				return false
			}
		}
		for i := range parts {
			if !sets[i][clauseKey(parts[i])] {
				return false
			}
		}
	}
	return true
}

func clauseKey(c []int32) string {
	b := make([]byte, 0, len(c)*4)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}
