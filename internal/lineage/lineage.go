// Package lineage is a small Boolean-provenance library for monotone DNF
// formulas over tuple variables: normalization, statistics, variable
// dissociation (the formula-level operation of Theorem 8 of the paper),
// rendering, and read-once factorization.
//
// Read-once formulas — where every variable can be made to occur exactly
// once — admit linear-time exact probability computation. They are the
// data-level tractable cases studied by Sen et al. and Roy et al., which
// the paper cites as the complementary approach to its query-level
// dissociation; internal/exact uses the factorization as a fast path.
package lineage

import (
	"fmt"
	"sort"
	"strings"
)

// DNF is a monotone formula in disjunctive normal form: a disjunction of
// clauses, each a conjunction of variable ids. An empty DNF is false; a
// DNF containing an empty clause is true.
type DNF [][]int32

// Normalize sorts every clause, removes duplicate variables and clauses,
// applies absorption (a superset of another clause is redundant), and
// sorts the clause list. The receiver is not modified.
func (f DNF) Normalize() DNF {
	norm := make(DNF, 0, len(f))
	for _, c := range f {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		uniq := cc[:0]
		for i, v := range cc {
			if i == 0 || cc[i-1] != v {
				uniq = append(uniq, v)
			}
		}
		norm = append(norm, uniq)
	}
	sort.Slice(norm, func(i, j int) bool { return clauseLess(norm[i], norm[j]) })
	dedup := norm[:0]
	for i, c := range norm {
		if i == 0 || !clauseEqual(norm[i-1], c) {
			dedup = append(dedup, c)
		}
	}
	return absorb(dedup)
}

func absorb(f DNF) DNF {
	byLen := append(DNF(nil), f...)
	sort.Slice(byLen, func(i, j int) bool { return len(byLen[i]) < len(byLen[j]) })
	var kept DNF
	for _, c := range byLen {
		redundant := false
		for _, k := range kept {
			if isSubset(k, c) {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return clauseLess(kept[i], kept[j]) })
	return kept
}

// Vars returns the distinct variables of the formula in ascending order.
func (f DNF) Vars() []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, c := range f {
		for _, v := range c {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of clauses (the paper's lineage size).
func (f DNF) Size() int { return len(f) }

// Occurrences returns how many clauses each variable appears in.
func (f DNF) Occurrences() map[int32]int {
	out := map[int32]int{}
	for _, c := range f {
		seen := map[int32]bool{}
		for _, v := range c {
			if !seen[v] {
				seen[v] = true
				out[v]++
			}
		}
	}
	return out
}

// IsTrue reports whether the formula is trivially true (has an empty
// clause).
func (f DNF) IsTrue() bool {
	for _, c := range f {
		if len(c) == 0 {
			return true
		}
	}
	return false
}

// String renders the formula with a naming function, e.g.
// "X1·X2 ∨ X1·X3".
func (f DNF) String(name func(int32) string) string {
	if name == nil {
		name = func(v int32) string { return fmt.Sprintf("x%d", v) }
	}
	if len(f) == 0 {
		return "false"
	}
	var cls []string
	for _, c := range f {
		if len(c) == 0 {
			return "true"
		}
		var vs []string
		for _, v := range c {
			vs = append(vs, name(v))
		}
		cls = append(cls, strings.Join(vs, "·"))
	}
	return strings.Join(cls, " ∨ ")
}

// Dissociate replaces the occurrences of variable v in different clauses
// with fresh variables starting at nextID, returning the dissociated
// formula, the ids used (one per clause containing v, in clause order),
// and the next unused id. By Theorem 8, if the fresh variables get v's
// probability, the dissociated formula's probability upper-bounds the
// original's.
func (f DNF) Dissociate(v int32, nextID int32) (DNF, []int32, int32) {
	out := make(DNF, len(f))
	var fresh []int32
	for i, c := range f {
		has := false
		for _, x := range c {
			if x == v {
				has = true
				break
			}
		}
		if !has {
			out[i] = append([]int32(nil), c...)
			continue
		}
		id := nextID
		nextID++
		fresh = append(fresh, id)
		nc := make([]int32, 0, len(c))
		for _, x := range c {
			if x == v {
				nc = append(nc, id)
			} else {
				nc = append(nc, x)
			}
		}
		out[i] = nc
	}
	return out, fresh, nextID
}

func clauseLess(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func clauseEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isSubset reports whether sorted a ⊆ sorted b.
func isSubset(a, b []int32) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}
