package lineage_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lapushdb/internal/exact"
	. "lapushdb/internal/lineage"
)

func TestNormalize(t *testing.T) {
	f := DNF{{2, 1, 1}, {1, 2}, {1, 2, 3}, {4}}
	n := f.Normalize()
	// {1,2} deduped, {1,2,3} absorbed by {1,2}, {4} kept.
	if len(n) != 2 {
		t.Fatalf("normalized = %v", n)
	}
	if !clauseEqual(n[0], []int32{1, 2}) || !clauseEqual(n[1], []int32{4}) {
		t.Errorf("normalized = %v", n)
	}
}

func TestVarsAndStats(t *testing.T) {
	f := DNF{{0, 1}, {0, 2}}
	if got := f.Vars(); len(got) != 3 {
		t.Errorf("vars = %v", got)
	}
	occ := f.Occurrences()
	if occ[0] != 2 || occ[1] != 1 {
		t.Errorf("occurrences = %v", occ)
	}
	if f.Size() != 2 {
		t.Errorf("size = %d", f.Size())
	}
	if f.IsTrue() || !(DNF{{}}).IsTrue() {
		t.Error("IsTrue wrong")
	}
}

func TestString(t *testing.T) {
	f := DNF{{0, 1}, {2}}
	if got := f.String(nil); got != "x0·x1 ∨ x2" {
		t.Errorf("string = %q", got)
	}
	if got := (DNF{}).String(nil); got != "false" {
		t.Errorf("empty = %q", got)
	}
	if got := (DNF{{}}).String(nil); got != "true" {
		t.Errorf("true = %q", got)
	}
}

func TestDissociateUpperBound(t *testing.T) {
	// F = X0·X1 ∨ X0·X2 dissociated on X0 gives Example 9's F'.
	f := DNF{{0, 1}, {0, 2}}
	probs := []float64{0.5, 0.4, 0.7, 0, 0}
	dis, fresh, next := f.Dissociate(0, 3)
	if len(fresh) != 2 || next != 5 {
		t.Fatalf("fresh = %v, next = %d", fresh, next)
	}
	for _, id := range fresh {
		probs[id] = probs[0]
	}
	p := exact.Prob(f, probs)
	pd := exact.Prob(dis, probs)
	want := 0.5*0.4 + 0.5*0.7 - 0.25*0.4*0.7 // pq + pr − p²qr
	if math.Abs(pd-want) > 1e-12 {
		t.Errorf("dissociated = %v, want %v", pd, want)
	}
	if pd < p {
		t.Errorf("dissociation lowered probability: %v < %v", pd, p)
	}
}

func TestFactorExamples(t *testing.T) {
	probs := []float64{0.5, 0.4, 0.7, 0.2}
	cases := []struct {
		name     string
		f        DNF
		readOnce bool
	}{
		{"X(Y+Z)", DNF{{0, 1}, {0, 2}}, true},
		{"single clause", DNF{{0, 1, 2}}, true},
		{"independent clauses", DNF{{0}, {1}, {2}}, true},
		{"grid product", DNF{{0, 2}, {0, 3}, {1, 2}, {1, 3}}, true}, // (X0+X1)(X2+X3)
		{"P4 path", DNF{{0, 1}, {1, 2}, {2, 3}}, false},             // canonical non-read-once
		{"triangle-ish", DNF{{0, 1}, {1, 2}, {0, 2}}, false},
	}
	for _, c := range cases {
		tree, ok := Factor(c.f)
		if ok != c.readOnce {
			t.Errorf("%s: read-once = %v, want %v", c.name, ok, c.readOnce)
			continue
		}
		if !ok {
			continue
		}
		got := tree.Prob(probs)
		want := exact.Prob(c.f, probs)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: tree prob %v, exact %v (tree %s)", c.name, got, want, tree)
		}
		// Every variable occurs exactly once in the tree.
		if tree.VarCount() != len(c.f.Normalize().Vars()) {
			t.Errorf("%s: tree has %d leaves for %d vars", c.name, tree.VarCount(), len(c.f.Vars()))
		}
	}
}

func TestFactorTrivial(t *testing.T) {
	if tr, ok := Factor(DNF{}); !ok || tr.Kind != TreeFalse || tr.Prob(nil) != 0 {
		t.Error("empty formula should factor to false")
	}
	if tr, ok := Factor(DNF{{}}); !ok || tr.Kind != TreeTrue || tr.Prob(nil) != 1 {
		t.Error("empty clause should factor to true")
	}
	if tr, ok := Factor(DNF{{5}}); !ok || tr.Kind != TreeVar || tr.Var != 5 {
		t.Error("single variable")
	}
}

// randomReadOnceTree builds a random read-once tree and its DNF
// expansion.
func randomReadOnceTree(rng *rand.Rand, nextVar *int32, depth int) (*Tree, DNF) {
	if depth == 0 || rng.Float64() < 0.3 {
		v := *nextVar
		*nextVar++
		return &Tree{Kind: TreeVar, Var: v}, DNF{{v}}
	}
	k := 2 + rng.Intn(2)
	children := make([]*Tree, k)
	dnfs := make([]DNF, k)
	for i := 0; i < k; i++ {
		children[i], dnfs[i] = randomReadOnceTree(rng, nextVar, depth-1)
	}
	if rng.Float64() < 0.5 {
		// OR: union of clause sets.
		var f DNF
		for _, d := range dnfs {
			f = append(f, d...)
		}
		return &Tree{Kind: TreeOr, Children: children}, f
	}
	// AND: cartesian product of clause sets.
	f := DNF{{}}
	for _, d := range dnfs {
		var nf DNF
		for _, a := range f {
			for _, b := range d {
				c := append(append([]int32(nil), a...), b...)
				nf = append(nf, c)
			}
		}
		f = nf
	}
	return &Tree{Kind: TreeAnd, Children: children}, f
}

// TestFactorQuickReadOnce: the expansion of any read-once tree factors
// back, and the probabilities agree with the DPLL solver.
func TestFactorQuickReadOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var next int32
		_, dnf := randomReadOnceTree(rng, &next, 3)
		if len(dnf) > 64 {
			return true // keep the oracle cheap
		}
		probs := make([]float64, next)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		tree, ok := Factor(dnf)
		if !ok {
			return false
		}
		return math.Abs(tree.Prob(probs)-exact.Prob(dnf, probs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFactorQuickSound: whenever Factor succeeds on a random formula,
// the tree's probability matches the solver's.
func TestFactorQuickSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 2 + rng.Intn(8)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		n := 1 + rng.Intn(6)
		var dnf DNF
		for i := 0; i < n; i++ {
			w := 1 + rng.Intn(3)
			c := make([]int32, w)
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			dnf = append(dnf, c)
		}
		tree, ok := Factor(dnf)
		if !ok {
			return true
		}
		return math.Abs(tree.Prob(probs)-exact.Prob(dnf, probs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTreeString(t *testing.T) {
	tree, ok := Factor(DNF{{0, 1}, {0, 2}})
	if !ok {
		t.Fatal("should factor")
	}
	s := tree.String()
	if s != "x0·(x1 + x2)" && s != "(x1 + x2)·x0" {
		t.Errorf("tree rendering = %q", s)
	}
}

func clauseEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
