// Package viz renders the paper's illustrations as Graphviz DOT: the
// partial dissociation order of a query (Figure 1a) with safe
// dissociations highlighted and minimal safe ones emphasized, and query
// plans as operator trees (Figure 1b).
package viz

import (
	"fmt"
	"sort"
	"strings"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// LatticeDOT renders the dissociation lattice of q (Figure 1a): one node
// per dissociation, edges between immediate neighbors (differing by one
// variable), safe dissociations filled green, minimal safe dissociations
// double-peripheried. Exponential in the dissociation slots; intended
// for small queries.
func LatticeDOT(q *cq.Query) string {
	dissociations := core.Dissociations(q)
	minimal := map[string]bool{}
	for _, d := range core.MinimalSafeDissociations(q) {
		minimal[d.Key()] = true
	}
	id := func(d plan.Dissociation) string {
		return fmt.Sprintf("%q", "n"+d.Key())
	}
	var b strings.Builder
	b.WriteString("digraph lattice {\n")
	b.WriteString("  rankdir=BT;\n")
	fmt.Fprintf(&b, "  label=%q;\n", "dissociation lattice of "+q.String())
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, d := range dissociations {
		label := d.Key()
		if d.IsEmpty() {
			label = "∆⊥ (original query)"
		}
		attrs := []string{fmt.Sprintf("label=%q", label)}
		if d.IsSafeFor(q) {
			attrs = append(attrs, `style=filled`, `fillcolor="#c8e6c9"`)
		}
		if minimal[d.Key()] {
			attrs = append(attrs, `peripheries=2`, `fillcolor="#81c784"`)
		}
		fmt.Fprintf(&b, "  %s [%s];\n", id(d), strings.Join(attrs, ", "))
	}
	// Cover edges: ∆ -> ∆′ when ∆ ⪯ ∆′ and they differ in exactly one
	// dissociated variable.
	size := func(d plan.Dissociation) int {
		n := 0
		for _, s := range d.Extra {
			n += s.Len()
		}
		return n
	}
	for _, lo := range dissociations {
		for _, hi := range dissociations {
			if size(hi) == size(lo)+1 && lo.LE(hi) {
				fmt.Fprintf(&b, "  %s -> %s;\n", id(lo), id(hi))
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PlanDOT renders one query plan as an operator tree (one panel of
// Figure 1b).
func PlanDOT(p plan.Node, title string) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n", title)
	}
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	n := 0
	var walk func(plan.Node) string
	walk = func(node plan.Node) string {
		id := fmt.Sprintf("n%d", n)
		n++
		var label, shape string
		switch t := node.(type) {
		case *plan.Scan:
			label = t.Atom.String()
			shape = "box"
		case *plan.Project:
			label = "π-" + joinVars(t.Away())
			shape = "ellipse"
		case *plan.Join:
			label = "⋈"
			shape = "ellipse"
		case *plan.Min:
			label = "min"
			shape = "diamond"
		}
		fmt.Fprintf(&b, "  %s [label=%q, shape=%s];\n", id, label, shape)
		for _, c := range node.Children() {
			cid := walk(c)
			fmt.Fprintf(&b, "  %s -> %s;\n", id, cid)
		}
		return id
	}
	walk(p)
	b.WriteString("}\n")
	return b.String()
}

// MinimalPlansDOT renders all minimal plans of q side by side with
// their dissociations (Figure 1b).
func MinimalPlansDOT(q *cq.Query, sch *core.Schema) string {
	plans := core.MinimalPlans(q, sch)
	var b strings.Builder
	b.WriteString("digraph plans {\n")
	fmt.Fprintf(&b, "  label=%q;\n", "minimal plans of "+q.String())
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	n := 0
	for pi, p := range plans {
		d := plan.DeltaOf(q, p)
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", pi)
		fmt.Fprintf(&b, "    label=%q;\n", fmt.Sprintf("plan %d: ∆ = %s", pi+1, d))
		var walk func(plan.Node) string
		walk = func(node plan.Node) string {
			id := fmt.Sprintf("n%d", n)
			n++
			var label, shape string
			switch t := node.(type) {
			case *plan.Scan:
				label = t.Atom.String()
				shape = "box"
			case *plan.Project:
				label = "π-" + joinVars(t.Away())
				shape = "ellipse"
			case *plan.Join:
				label = "⋈"
				shape = "ellipse"
			case *plan.Min:
				label = "min"
				shape = "diamond"
			}
			fmt.Fprintf(&b, "    %s [label=%q, shape=%s];\n", id, label, shape)
			for _, c := range node.Children() {
				cid := walk(c)
				fmt.Fprintf(&b, "    %s -> %s;\n", id, cid)
			}
			return id
		}
		walk(p)
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func joinVars(vs []cq.Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// IncidenceMatrix renders the paper's "augmented incidence matrix"
// notation (Figures 1a and 3): one row per relation, one column per
// existential variable; "o" marks a variable the relation contains,
// "*" a variable it is dissociated on, "." absence. Deterministic
// relations (per the schema) are marked with a d-exponent, and their
// dissociated variables rendered "o" instead of "*" — the paper's
// convention that dissociating a deterministic relation is free.
func IncidenceMatrix(q *cq.Query, d plan.Dissociation, det map[string]bool) string {
	evars := q.EVars()
	var b strings.Builder
	// Header.
	width := 0
	for _, a := range q.Atoms {
		name := a.Rel
		if det[a.Rel] {
			name += "^d"
		}
		if len(name) > width {
			width = len(name)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, v := range evars {
		fmt.Fprintf(&b, "%-3s", string(v))
	}
	b.WriteString("\n")
	for _, a := range q.Atoms {
		name := a.Rel
		if det[a.Rel] {
			name += "^d"
		}
		fmt.Fprintf(&b, "%-*s", width+2, name)
		has := cq.NewVarSet(a.Vars()...)
		extra := d.ExtraOf(a.Rel)
		for _, v := range evars {
			switch {
			case has.Has(v):
				b.WriteString("o  ")
			case extra.Has(v) && det[a.Rel]:
				b.WriteString("o  ") // free dissociation of a DR
			case extra.Has(v):
				b.WriteString("*  ")
			default:
				b.WriteString(".  ")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// LatticeMatrices renders every dissociation of q as an incidence
// matrix with its safety status — the textual form of Figure 1a /
// Figure 3. Exponential; small queries only.
func LatticeMatrices(q *cq.Query, det map[string]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dissociation lattice of %s\n\n", q)
	for i, d := range core.Dissociations(q) {
		status := "unsafe"
		if d.IsSafeFor(q) {
			status = "safe"
		}
		fmt.Fprintf(&b, "∆%d = %s (%s)\n%s\n", i, d, status, IncidenceMatrix(q, d, det))
	}
	return b.String()
}
