package viz

import (
	"strings"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

func TestLatticeDOTExample17(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x), T(x, y), U(y)")
	dot := LatticeDOT(q)
	// 8 dissociation nodes.
	if got := strings.Count(dot, "label="); got < 8 {
		t.Errorf("nodes = %d, want >= 8", got)
	}
	// 5 safe dissociations filled.
	if got := strings.Count(dot, "style=filled"); got != 5 {
		t.Errorf("safe nodes = %d, want 5", got)
	}
	// 2 minimal safe ones double-peripheried.
	if got := strings.Count(dot, "peripheries=2"); got != 2 {
		t.Errorf("minimal nodes = %d, want 2", got)
	}
	if !strings.Contains(dot, "∆⊥") {
		t.Error("bottom element missing")
	}
	if !strings.HasPrefix(dot, "digraph lattice {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Error("not a DOT digraph")
	}
}

func TestPlanDOT(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sp := core.SinglePlan(q, nil)
	dot := PlanDOT(sp, "merged plan")
	for _, want := range []string{"min", "⋈", "π-", "R(x)", "shape=diamond"} {
		if !strings.Contains(dot, want) {
			t.Errorf("missing %q in plan DOT", want)
		}
	}
}

func TestMinimalPlansDOT(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x), T(x, y), U(y)")
	dot := MinimalPlansDOT(q, nil)
	if got := strings.Count(dot, "subgraph cluster_"); got != 2 {
		t.Errorf("clusters = %d, want 2 minimal plans", got)
	}
	if !strings.Contains(dot, "∆ = {") {
		t.Error("dissociation labels missing")
	}
}

func TestIncidenceMatrixExample23(t *testing.T) {
	// Figure 3b: q :- R(x), S(x, y), T^d(y) with ∆2 = {T^x}.
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	delta := mustDelta("T", "x")
	out := IncidenceMatrix(q, delta, map[string]bool{"T": true})
	if !strings.Contains(out, "T^d") {
		t.Errorf("deterministic marker missing:\n%s", out)
	}
	// T is deterministic: its dissociated x renders "o", not "*".
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	tLine := lines[3]
	if strings.Contains(tLine, "*") {
		t.Errorf("DR dissociation should render as o:\n%s", out)
	}
	// R dissociated on y (probabilistic) renders "*".
	delta2 := mustDelta("R", "y")
	out2 := IncidenceMatrix(q, delta2, map[string]bool{"T": true})
	rLine := strings.Split(strings.TrimSpace(out2), "\n")[1]
	if !strings.Contains(rLine, "*") {
		t.Errorf("probabilistic dissociation should render as *:\n%s", out2)
	}
}

func TestLatticeMatrices(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	out := LatticeMatrices(q, nil)
	if got := strings.Count(out, "∆"); got != 4 {
		t.Errorf("dissociations rendered = %d, want 4", got)
	}
	if !strings.Contains(out, "(safe)") || !strings.Contains(out, "(unsafe)") {
		t.Errorf("safety labels missing:\n%s", out)
	}
}

func mustDelta(rel, v string) plan.Dissociation {
	d := plan.NewDissociation()
	d.Add(rel, cq.Var(v))
	return d
}
