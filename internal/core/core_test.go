package core

import (
	"fmt"
	"strings"
	"testing"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// chainQuery builds the paper's k-chain query
// q(x0, xk) :- R1(x0, x1), ..., Rk(xk-1, xk).
func chainQuery(k int) *cq.Query {
	var b strings.Builder
	fmt.Fprintf(&b, "q(x0, x%d) :- ", k)
	for i := 1; i <= k; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "R%d(x%d, x%d)", i, i-1, i)
	}
	return cq.MustParse(b.String())
}

// starQuery builds the paper's k-star query
// q('a') :- R1('a', x1), R2(x2), ..., Rk(xk), R0(x1, ..., xk).
func starQuery(k int) *cq.Query {
	var b strings.Builder
	b.WriteString("q() :- R1('a', x1)")
	for i := 2; i <= k; i++ {
		fmt.Fprintf(&b, ", R%d(x%d)", i, i)
	}
	b.WriteString(", R0(")
	for i := 1; i <= k; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "x%d", i)
	}
	b.WriteString(")")
	return cq.MustParse(b.String())
}

// TestFigure2Chain checks the #MP (Catalan), #P (Schröder–Hipparchus) and
// #∆ (2^((k-1)(k-2))) columns of Figure 2 for k-chain queries.
func TestFigure2Chain(t *testing.T) {
	wantMP := map[int]int{2: 1, 3: 2, 4: 5, 5: 14, 6: 42}
	wantP := map[int]int{2: 1, 3: 3, 4: 11, 5: 45, 6: 197}
	for k := 2; k <= 6; k++ {
		q := chainQuery(k)
		if got := len(MinimalPlans(q, nil)); got != wantMP[k] {
			t.Errorf("chain k=%d: #MP = %d, want %d", k, got, wantMP[k])
		}
		if got := len(AllPlans(q)); got != wantP[k] {
			t.Errorf("chain k=%d: #P = %d, want %d", k, got, wantP[k])
		}
		wantD := fmt.Sprintf("%d", 1<<uint((k-1)*(k-2)))
		if got := CountDissociations(q).String(); got != wantD {
			t.Errorf("chain k=%d: #∆ = %s, want %s", k, got, wantD)
		}
	}
}

// TestFigure2ChainLarge covers the expensive tail of Figure 2 (7- and
// 8-chains: 132 and 429 minimal plans, 903 and 4279 total plans).
func TestFigure2ChainLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	q := chainQuery(7)
	if got := len(MinimalPlans(q, nil)); got != 132 {
		t.Errorf("chain k=7: #MP = %d, want 132", got)
	}
	if got := len(AllPlans(q)); got != 903 {
		t.Errorf("chain k=7: #P = %d, want 903", got)
	}
	q = chainQuery(8)
	if got := len(MinimalPlans(q, nil)); got != 429 {
		t.Errorf("chain k=8: #MP = %d, want 429", got)
	}
	if got := len(AllPlans(q)); got != 4279 {
		t.Errorf("chain k=8: #P = %d, want 4279", got)
	}
}

// TestFigure2Star checks the #MP (k!), #P (ordered Bell) and #∆
// (2^(k(k-1))) columns of Figure 2 for k-star queries.
func TestFigure2Star(t *testing.T) {
	wantMP := map[int]int{1: 1, 2: 2, 3: 6, 4: 24}
	wantP := map[int]int{1: 1, 2: 3, 3: 13, 4: 75}
	for k := 1; k <= 4; k++ {
		q := starQuery(k)
		if got := len(MinimalPlans(q, nil)); got != wantMP[k] {
			t.Errorf("star k=%d: #MP = %d, want %d", k, got, wantMP[k])
		}
		if got := len(AllPlans(q)); got != wantP[k] {
			t.Errorf("star k=%d: #P = %d, want %d", k, got, wantP[k])
		}
		wantD := fmt.Sprintf("%d", 1<<uint(k*(k-1)))
		if got := CountDissociations(q).String(); got != wantD {
			t.Errorf("star k=%d: #∆ = %s, want %s", k, got, wantD)
		}
	}
}

func TestFigure2StarLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	q := starQuery(5)
	if got := len(MinimalPlans(q, nil)); got != 120 {
		t.Errorf("star k=5: #MP = %d, want 120", got)
	}
	if got := len(AllPlans(q)); got != 541 {
		t.Errorf("star k=5: #P = %d, want 541", got)
	}
}

// TestExample17 reproduces the full lattice of Example 17:
// q :- R(x), S(x), T(x,y), U(y) has 8 dissociations, 5 safe, 2 minimal.
func TestExample17(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x), T(x, y), U(y)")
	all := Dissociations(q)
	if len(all) != 8 {
		t.Fatalf("#dissociations = %d, want 8", len(all))
	}
	safe := 0
	for _, d := range all {
		if d.IsSafeFor(q) {
			safe++
		}
	}
	if safe != 5 {
		t.Errorf("#safe = %d, want 5", safe)
	}
	minimal := MinimalSafeDissociations(q)
	if len(minimal) != 2 {
		t.Fatalf("#minimal safe = %d, want 2", len(minimal))
	}
	// ∆3 = {U^x} and ∆4 = {R^y, S^y}.
	keys := map[string]bool{}
	for _, d := range minimal {
		keys[d.Key()] = true
	}
	if !keys["{U^{x}}"] || !keys["{R^{y}, S^{y}}"] {
		t.Errorf("minimal safe dissociations = %v", keys)
	}
	plans := MinimalPlans(q, nil)
	if len(plans) != 2 {
		t.Fatalf("#minimal plans = %d, want 2", len(plans))
	}
}

// TestMPMatchesLattice cross-validates Algorithm 1 against the naive
// lattice enumeration (Theorem 20): the dissociations of the minimal plans
// are exactly the minimal safe dissociations.
func TestMPMatchesLattice(t *testing.T) {
	queries := []string{
		"q() :- R(x), S(x), T(x, y), U(y)",
		"q() :- R(x), S(x, y), T(y)",
		"q(z) :- R(z, x), S(x, y), T(y)",
		"q() :- R(x), S(x, y)",
		"q() :- R(x, y), S(y, z), T(z, u)",
		"q() :- R(x), S(y), T(x, y)",
		"q() :- R1(x0, x1), R2(x1, x2), R3(x2, x3)",
		"q() :- R1('a', x1), R2(x2), R0(x1, x2)",
		"q() :- A(x), B(y), C(z), M(x, y, z)",
	}
	for _, s := range queries {
		q := cq.MustParse(s)
		wantSet := map[string]bool{}
		for _, d := range MinimalSafeDissociations(q) {
			wantSet[d.Key()] = true
		}
		plans := MinimalPlans(q, nil)
		gotSet := map[string]bool{}
		for _, p := range plans {
			gotSet[plan.DeltaOf(q, p).Key()] = true
		}
		if len(gotSet) != len(plans) {
			t.Errorf("%s: duplicate dissociations among minimal plans", s)
		}
		if !sameSet(gotSet, wantSet) {
			t.Errorf("%s:\n MP deltas      = %v\n lattice deltas = %v", s, gotSet, wantSet)
		}
	}
}

// TestConservativity: safe queries yield exactly one plan, and that plan
// has the empty dissociation (it is the safe plan).
func TestConservativity(t *testing.T) {
	safeQueries := []string{
		"q() :- R(x)",
		"q() :- R(x), S(x, y)",
		"q(z) :- R(z, x), S(x, y), K(x, y)",
		"q() :- R(x, y), S(y, z), T(y, z, u)",
		"q() :- R(x), S(y)",
	}
	for _, s := range safeQueries {
		q := cq.MustParse(s)
		plans := MinimalPlans(q, nil)
		if len(plans) != 1 {
			t.Errorf("%s: safe query has %d minimal plans, want 1", s, len(plans))
			continue
		}
		if d := plan.DeltaOf(q, plans[0]); !d.IsEmpty() {
			t.Errorf("%s: safe plan dissociates %s", s, d)
		}
		if !plan.IsSafe(plans[0], q.HeadSet()) {
			t.Errorf("%s: returned plan is not safe: %s", s, plan.String(plans[0]))
		}
		if !IsSafe(q, nil) {
			t.Errorf("IsSafe(%s) = false, want true", s)
		}
	}
}

func TestUnsafeQueriesDetected(t *testing.T) {
	for _, s := range []string{
		"q() :- R(x), S(x, y), T(y)",
		"q() :- R(x), S(x), T(x, y), U(y)",
		"q(x0, x3) :- R1(x0, x1), R2(x1, x2), R3(x2, x3)",
	} {
		q := cq.MustParse(s)
		if IsSafe(q, nil) {
			t.Errorf("IsSafe(%s) = true, want false", s)
		}
		if got := len(MinimalPlans(q, nil)); got < 2 {
			t.Errorf("%s: unsafe query has %d plans, want >= 2", s, got)
		}
	}
}

// TestExample23DRs: q :- R(x), S(x, y), Td(y) is safe when T is
// deterministic; the modified algorithm returns the single plan P∆2.
func TestExample23DRs(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sch := &Schema{Det: map[string]bool{"T": true}}
	plans := MinimalPlans(q, sch)
	if len(plans) != 1 {
		t.Fatalf("#plans = %d, want 1; plans: %v", len(plans), planStrings(plans))
	}
	d := plan.DeltaOf(q, plans[0])
	want := plan.NewDissociation()
	want.Add("T", "x")
	if !d.Equal(want) {
		t.Errorf("∆ = %s, want %s (P∆2)", d, want)
	}
	if !IsSafe(q, sch) {
		t.Error("query should be safe with T deterministic")
	}
	// Without the schema it has two plans.
	if got := len(MinimalPlans(q, nil)); got != 2 {
		t.Errorf("#plans without schema = %d, want 2", got)
	}
}

// TestExample23AllDeterministic: with Rd and Td deterministic the stopping
// rule fires and a single exact plan is returned.
func TestExample23AllDeterministic(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sch := &Schema{Det: map[string]bool{"R": true, "T": true}}
	plans := MinimalPlans(q, sch)
	if len(plans) != 1 {
		t.Fatalf("#plans = %d, want 1", len(plans))
	}
	// The single plan corresponds to ∆3 = {R^y, T^x} — the top of the
	// lattice, deterministic relations fully dissociated.
	d := plan.DeltaOf(q, plans[0])
	want := plan.NewDissociation()
	want.Add("R", "y")
	want.Add("T", "x")
	if !d.Equal(want) {
		t.Errorf("∆ = %s, want %s (P∆3)", d, want)
	}
	if !IsSafe(q, sch) {
		t.Error("query should be safe")
	}
}

// TestSingleProbRelationExactPlan guards the subtle case where the single
// probabilistic relation does NOT contain all existential variables: the
// stop plan must still be exact, i.e. dissociate only deterministic
// relations.
func TestSingleProbRelationExactPlan(t *testing.T) {
	// R probabilistic; S, T deterministic. EVar {x, y} ⊄ Var(R) = {x}.
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sch := &Schema{Det: map[string]bool{"S": true, "T": true}}
	plans := MinimalPlans(q, sch)
	if len(plans) != 1 {
		t.Fatalf("#plans = %d, want 1", len(plans))
	}
	d := plan.DeltaOf(q, plans[0])
	if extra := d.ExtraOf("R"); extra.Len() != 0 {
		t.Errorf("probabilistic R dissociated on %s; stop plan is not exact", extra)
	}
	if !IsSafe(q, sch) {
		t.Error("query with one probabilistic relation should be safe")
	}
}

// TestFDsMakeSafe: q :- R(x), S(x, y), T(y) with FD x→y (key of S) is safe
// and gets the single plan of dissociation ∆2 = {R^y} (Section 3.3.2).
func TestFDsMakeSafe(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sch := &Schema{FDs: []cq.FD{{Src: []cq.Var{"x"}, Dst: "y"}}}
	plans := MinimalPlans(q, sch)
	if len(plans) != 1 {
		t.Fatalf("#plans = %d, want 1: %v", len(plans), planStrings(plans))
	}
	d := plan.DeltaOf(q, plans[0])
	want := plan.NewDissociation()
	want.Add("R", "y")
	if !d.Equal(want) {
		t.Errorf("∆ = %s, want %s", d, want)
	}
	if !IsSafe(q, sch) {
		t.Error("query should be safe under FD x→y")
	}
}

func TestChase(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sch := &Schema{FDs: []cq.FD{{Src: []cq.Var{"x"}, Dst: "y"}}}
	d := Chase(q, sch)
	if got := d.ExtraOf("R"); !got.Equal(cq.NewVarSet("y")) {
		t.Errorf("chase of R = %s, want {y}", got)
	}
	if got := d.ExtraOf("S"); got.Len() != 0 {
		t.Errorf("chase of S = %s, want empty", got)
	}
	if got := d.ExtraOf("T"); got.Len() != 0 {
		t.Errorf("chase of T = %s, want empty", got)
	}
	// No FDs: empty chase.
	if !Chase(q, nil).IsEmpty() {
		t.Error("chase without FDs should be empty")
	}
}

// TestSinglePlanStructure: Algorithm 2 merges the minimal plans into one
// plan with min nodes; for a safe query there is no min node at all.
func TestSinglePlanStructure(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sp := SinglePlan(q, nil)
	if !hasMin(sp) {
		t.Errorf("single plan of unsafe query should contain a min node: %s", plan.String(sp))
	}
	safe := cq.MustParse("q() :- R(x), S(x, y)")
	sp = SinglePlan(safe, nil)
	if hasMin(sp) {
		t.Errorf("single plan of safe query should have no min node: %s", plan.String(sp))
	}
}

// TestSinglePlanCoversMinimalPlans: every minimal plan appears as an
// alternative inside the merged plan's min structure in the sense that the
// merged plan references the same set of relations and the same top-level
// cut alternatives.
func TestSinglePlanCoversMinimalPlans(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x), T(x, y), U(y)")
	sp := SinglePlan(q, nil)
	m, ok := sp.(*plan.Min)
	if !ok {
		t.Fatalf("expected top-level min, got %s", plan.String(sp))
	}
	if len(m.Subs) != 2 {
		t.Errorf("top-level alternatives = %d, want 2 (cuts {x} and {y})", len(m.Subs))
	}
}

// TestExample29SixPlans: q :- R(x,z), S(y,u), T(z), U(u), M(x,y,z,u) has 6
// minimal plans (Section 4, Example 29).
func TestExample29SixPlans(t *testing.T) {
	q := cq.MustParse("q() :- R(x, z), S(y, u), T(z), U(u), M(x, y, z, u)")
	plans := MinimalPlans(q, nil)
	if len(plans) != 6 {
		t.Errorf("#minimal plans = %d, want 6:\n%s", len(plans), strings.Join(planStrings(plans), "\n"))
	}
	// Opt2 must find shared subplans among them (the views V1, V2, V3 of
	// Figure 4c): check the merged plan contains at least one repeated
	// subplan.
	sp := SinglePlan(q, nil)
	if len(plan.CommonSubplans(sp)) == 0 {
		t.Error("expected common subplans in the merged plan (views V1/V2/V3)")
	}
}

// TestMinimalPlansAreMutuallyIncomparable: no minimal plan's dissociation
// may dominate another's (they are all minimal in the lattice).
func TestMinimalPlansAreMutuallyIncomparable(t *testing.T) {
	for _, s := range []string{
		"q() :- R(x), S(x, y), T(y)",
		"q() :- R(x), S(x), T(x, y), U(y)",
		"q() :- R(x, z), S(y, u), T(z), U(u), M(x, y, z, u)",
	} {
		q := cq.MustParse(s)
		plans := MinimalPlans(q, nil)
		for i := range plans {
			for j := range plans {
				if i == j {
					continue
				}
				di, dj := plan.DeltaOf(q, plans[i]), plan.DeltaOf(q, plans[j])
				if di.LE(dj) {
					t.Errorf("%s: plan %d's dissociation %s ⪯ plan %d's %s", s, i, di, j, dj)
				}
			}
		}
	}
}

// TestAllPlansAreSafeDissociations: Theorem 18 — every enumerated plan
// corresponds to a safe dissociation, and distinct plans give distinct
// dissociations (1-to-1).
func TestAllPlansAreSafeDissociations(t *testing.T) {
	for _, s := range []string{
		"q() :- R(x), S(x, y), T(y)",
		"q() :- R(x), S(x), T(x, y), U(y)",
		"q() :- R1('a', x1), R2(x2), R0(x1, x2)",
	} {
		q := cq.MustParse(s)
		seen := map[string]bool{}
		for _, p := range SafeDissociationPlans(q) {
			d := plan.DeltaOf(q, p)
			if !d.IsSafeFor(q) {
				t.Errorf("%s: plan %s has unsafe dissociation %s", s, plan.String(p), d)
			}
			if seen[d.Key()] {
				t.Errorf("%s: dissociation %s corresponds to two plans", s, d)
			}
			seen[d.Key()] = true
		}
	}
}

// TestAllPlansCountEqualsSafeDissociations validates the 1-to-1
// correspondence numerically: #plans == #safe dissociations.
func TestAllPlansCountEqualsSafeDissociations(t *testing.T) {
	for _, s := range []string{
		"q() :- R(x), S(x, y), T(y)",
		"q() :- R(x), S(x), T(x, y), U(y)",
		"q() :- R1(x0, x1), R2(x1, x2), R3(x2, x3)",
	} {
		q := cq.MustParse(s)
		safe := 0
		for _, d := range Dissociations(q) {
			if d.IsSafeFor(q) {
				safe++
			}
		}
		if got := len(SafeDissociationPlans(q)); got != safe {
			t.Errorf("%s: #plans = %d, #safe dissociations = %d", s, got, safe)
		}
	}
}

func hasMin(n plan.Node) bool {
	if _, ok := n.(*plan.Min); ok {
		return true
	}
	for _, c := range n.Children() {
		if hasMin(c) {
			return true
		}
	}
	return false
}

func planStrings(ps []plan.Node) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = plan.String(p)
	}
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestTheorem24AgainstLattice cross-validates the DR-modified algorithm
// against brute force: enumerate all safe dissociations, group them into
// ≡p equivalence classes (equal extras on probabilistic relations),
// find the minimal classes under ⪯p, and check that MinimalPlans
// returns exactly one plan per minimal class, with its dissociation a
// member of that class.
func TestTheorem24AgainstLattice(t *testing.T) {
	cases := []struct {
		q   string
		det []string
	}{
		{"q() :- R(x), S(x, y), T(y)", []string{"T"}},
		{"q() :- R(x), S(x, y), T(y)", []string{"R"}},
		{"q() :- R(x), S(x, y), T(y)", []string{"R", "T"}},
		{"q() :- R(x), S(x), T(x, y), U(y)", []string{"S"}},
		{"q() :- R(x), S(x), T(x, y), U(y)", []string{"U"}},
		{"q() :- R(x), S(y), T(x, y)", []string{"T"}},
		{"q() :- A(x), B(y), M(x, y)", []string{"A", "B"}},
	}
	for _, c := range cases {
		q := cq.MustParse(c.q)
		det := map[string]bool{}
		for _, r := range c.det {
			det[r] = true
		}
		sch := &Schema{Det: det}
		isProb := func(rel string) bool { return !det[rel] }

		// Brute force: safe dissociations grouped by their probabilistic
		// extras (the ≡p class key).
		classKey := func(d plan.Dissociation) string {
			r := plan.NewDissociation()
			for rel, extra := range d.Extra {
				if isProb(rel) {
					for v := range extra {
						r.Add(rel, v)
					}
				}
			}
			return r.Key()
		}
		classes := map[string][]plan.Dissociation{}
		for _, d := range Dissociations(q) {
			if d.IsSafeFor(q) {
				classes[classKey(d)] = append(classes[classKey(d)], d)
			}
		}
		// Partial order on class keys: compare probabilistic extras.
		le := func(a, b plan.Dissociation) bool { return a.LEProb(b, isProb) }
		var minimalKeys []string
		for ka, as := range classes {
			dominated := false
			for kb, bs := range classes {
				if ka == kb {
					continue
				}
				if le(bs[0], as[0]) && !le(as[0], bs[0]) {
					dominated = true
					break
				}
			}
			if !dominated {
				minimalKeys = append(minimalKeys, ka)
			}
		}

		plans := MinimalPlans(q, sch)
		if len(plans) != len(minimalKeys) {
			t.Errorf("%s det=%v: %d plans, %d minimal ≡p classes", c.q, c.det, len(plans), len(minimalKeys))
			continue
		}
		seen := map[string]bool{}
		for _, p := range plans {
			key := classKey(plan.DeltaOf(q, p))
			if _, ok := classes[key]; !ok {
				t.Errorf("%s det=%v: plan dissociation %s not in any safe class", c.q, c.det, key)
				continue
			}
			if seen[key] {
				t.Errorf("%s det=%v: two plans in class %s", c.q, c.det, key)
			}
			seen[key] = true
			found := false
			for _, mk := range minimalKeys {
				if mk == key {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s det=%v: plan class %s is not minimal (minimal: %v)", c.q, c.det, key, minimalKeys)
			}
		}
	}
}
