// Package core implements the paper's primary contribution: the
// enumeration of all minimal query plans of a self-join-free conjunctive
// query (Algorithm 1, "MP"), its generalizations for schema knowledge —
// deterministic relations (Section 3.3.1) and functional dependencies
// (Section 3.3.2) — and the single merged plan of Optimization 1
// (Algorithm 2, "SP").
//
// Every plan returned for a query q computes, under the extensional score
// semantics of internal/engine, an upper bound on P(q) (Corollary 19); the
// minimum over the minimal plans is the propagation score ρ(q)
// (Definition 14). If q is safe, exactly one plan is returned and its
// score is the exact probability (conservativity, Proposition 6).
package core

import (
	"math/big"
	"sort"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// Schema carries the schema knowledge the algorithms exploit for a given
// query: which relations are deterministic, and the functional
// dependencies over the query's variables (typically instantiated from
// relation keys via cq.KeyFDs).
type Schema struct {
	// Det holds the relation symbols whose tuples all have probability 1.
	Det map[string]bool
	// FDs are functional dependencies over the query's variables.
	FDs []cq.FD
}

// EmptySchema returns a schema with no knowledge: every relation is
// probabilistic and no FDs hold.
func EmptySchema() *Schema { return &Schema{} }

// IsProb reports whether relation rel is probabilistic under the schema.
func (s *Schema) IsProb(rel string) bool {
	return s == nil || !s.Det[rel]
}

// HasKnowledge reports whether the schema carries any information that
// changes plan enumeration.
func (s *Schema) HasKnowledge() bool {
	return s != nil && (len(s.Det) > 0 || len(s.FDs) > 0)
}

// Closure returns the FD closure of the given variable set.
func (s *Schema) Closure(x cq.VarSet) cq.VarSet {
	if s == nil {
		return x.Clone()
	}
	return cq.Closure(x, s.FDs)
}

// Chase computes the dissociation chase ∆Γ of Section 3.3.2 ("full chase"
// of Olteanu et al.): every atom Ri(xi) is dissociated on x i⁺ \ xi, where
// the closure is taken under the schema FDs restricted to the query's
// variables. Dissociating on these variables never changes the probability
// (Lemma 25), so plan enumeration may run on the chased query. The
// returned dissociation is empty when the schema has no FDs.
func Chase(q *cq.Query, sch *Schema) plan.Dissociation {
	d := plan.NewDissociation()
	if sch == nil || len(sch.FDs) == 0 {
		return d
	}
	qvars := cq.NewVarSet(q.Vars()...)
	for _, a := range q.Atoms {
		own := cq.NewVarSet(a.Vars()...)
		cl := sch.Closure(own).Intersect(qvars)
		for v := range cl.Minus(own) {
			d.Add(a.Rel, v)
		}
	}
	return d
}

// MinimalPlans runs Algorithm 1 with the schema modifications of Theorems
// 24 and 27 and returns all minimal query plans of q. With a nil or empty
// schema this is plain Algorithm 1 (Theorem 20). The returned plans are
// over q's original atoms (chase variables are stripped back out) and are
// deduplicated, in deterministic order.
func MinimalPlans(q *cq.Query, sch *Schema) []plan.Node {
	chased := Chase(q, sch).Apply(q)
	e := &enumerator{sch: sch, memo: map[string][]plan.Node{}}
	raw := e.mp(chased)
	return reduceMinimal(q, sch, stripAll(q, raw))
}

// reduceMinimal keeps one plan per ⪯p′ equivalence class and drops plans
// whose class strictly dominates another (Sections 3.3.1–3.3.2): two plans
// whose dissociations differ only on deterministic relations or on
// FD-implied variables have the same probability, so a single
// representative suffices; a plan whose reduced dissociation is a strict
// superset of another's is never the minimum. Among equivalent plans the
// one with the larger full dissociation is kept — the paper prefers the
// top plan of each class because it least constrains the join order.
func reduceMinimal(q *cq.Query, sch *Schema, plans []plan.Node) []plan.Node {
	if !sch.HasKnowledge() || len(plans) <= 1 {
		return plans
	}
	qvars := cq.NewVarSet(q.Vars()...)
	closure := func(rel string) cq.VarSet {
		a := q.Atom(rel)
		return sch.Closure(cq.NewVarSet(a.Vars()...)).Intersect(qvars)
	}
	type entry struct {
		p       plan.Node
		d       plan.Dissociation
		reduced map[string]cq.VarSet // prob relations only, closure removed
		size    int                  // total extra vars of the full dissociation
	}
	entries := make([]entry, 0, len(plans))
	for _, p := range plans {
		d := plan.DeltaOf(q, p)
		red := map[string]cq.VarSet{}
		size := 0
		for rel, extra := range d.Extra {
			size += extra.Len()
			if sch.IsProb(rel) {
				if r := extra.Minus(closure(rel)); r.Len() > 0 {
					red[rel] = r
				}
			}
		}
		entries = append(entries, entry{p, d, red, size})
	}
	le := func(a, b map[string]cq.VarSet) bool {
		for rel, s := range a {
			if !s.SubsetOf(b[rel]) {
				return false
			}
		}
		return true
	}
	var keep []plan.Node
	for i, e := range entries {
		drop := false
		for j, o := range entries {
			if i == j {
				continue
			}
			if le(o.reduced, e.reduced) {
				if !le(e.reduced, o.reduced) {
					drop = true // strictly dominated
					break
				}
				// Equivalent class: keep the larger dissociation; tie-break
				// on plan key for determinism.
				if o.size > e.size || (o.size == e.size && j < i) {
					drop = true
					break
				}
			}
		}
		if !drop {
			keep = append(keep, e.p)
		}
	}
	return keep
}

// SinglePlan runs Algorithm 2 (Optimization 1): the minimal plans merged
// into one plan with the min operator pushed down to the cut branches. Its
// score equals the per-answer minimum of the minimal plans' scores, i.e.
// the propagation score ρ(q).
func SinglePlan(q *cq.Query, sch *Schema) plan.Node {
	chased := Chase(q, sch).Apply(q)
	e := &enumerator{sch: sch, memo: map[string][]plan.Node{}, spMemo: map[string]plan.Node{}}
	return plan.Strip(q, e.sp(chased))
}

type enumerator struct {
	sch    *Schema
	memo   map[string][]plan.Node
	spMemo map[string]plan.Node
}

// countProb returns the number of probabilistic atoms in q.
func (e *enumerator) countProb(q *cq.Query) int {
	n := 0
	for _, a := range q.Atoms {
		if e.sch.IsProb(a.Rel) {
			n++
		}
	}
	return n
}

// exactStopPlan is the stopping rule of the DR modification (Section
// 3.3.1): a (sub)query with at most one probabilistic relation is safe, so
// a single exact plan suffices. The plan is the safe plan of the
// dissociation that dissociates every deterministic relation on all
// missing variables — a dissociation that is ≡p to the empty one (Lemma
// 22) and always safe when at most one atom is probabilistic. For the
// all-deterministic case this degenerates to the paper's join-everything-
// then-project plan.
func (e *enumerator) exactStopPlan(q *cq.Query) plan.Node {
	d := plan.NewDissociation()
	all := cq.NewVarSet(q.Vars()...)
	for _, a := range q.Atoms {
		if !e.sch.IsProb(a.Rel) {
			for v := range all.Minus(cq.NewVarSet(a.Vars()...)) {
				d.Add(a.Rel, v)
			}
		}
	}
	p, err := plan.PlanOf(q, d)
	if err != nil {
		panic("core: exact stop dissociation is not safe: " + err.Error())
	}
	return p
}

// cuts returns the cut-sets Algorithm 1 branches on: MinCuts without
// schema knowledge, MinPCuts (cuts that separate at least two
// probabilistic components) when deterministic relations are declared.
func (e *enumerator) cuts(q *cq.Query) []cq.VarSet {
	if e.sch != nil && len(e.sch.Det) > 0 {
		return q.MinPCuts(e.sch.IsProb)
	}
	return q.MinCuts()
}

// useStop reports whether the DR stopping rule applies to q.
func (e *enumerator) useStop(q *cq.Query) bool {
	if len(q.Atoms) == 1 {
		return true
	}
	return e.sch != nil && len(e.sch.Det) > 0 && e.countProb(q) <= 1
}

// mp is Algorithm 1 (EnumerateMinimalPlans), memoized on the canonical
// query form.
func (e *enumerator) mp(q *cq.Query) []plan.Node {
	key := q.String()
	if ps, ok := e.memo[key]; ok {
		return ps
	}
	var out []plan.Node
	switch {
	case e.useStop(q):
		if len(q.Atoms) == 1 {
			a := q.Atoms[0]
			out = []plan.Node{plan.NewProject(q.Head, plan.NewScan(a, q.PredsOnAtom(a)))}
		} else {
			out = []plan.Node{e.exactStopPlan(q)}
		}
	case !q.IsConnected():
		comps := q.Components()
		alts := make([][]plan.Node, len(comps))
		for i, c := range comps {
			alts[i] = e.mp(c)
		}
		forEachCombination(alts, func(subs []plan.Node) {
			out = append(out, plan.NewProject(q.Head, plan.NewJoin(subs...)))
		})
	default:
		for _, y := range e.cuts(q) {
			qy := q.WithHead(append(append([]cq.Var(nil), q.Head...), y.Sorted()...))
			for _, p := range e.mp(qy) {
				out = append(out, plan.NewProject(q.Head, p))
			}
		}
	}
	out = dedupe(out)
	e.memo[key] = out
	return out
}

// sp is Algorithm 2 (SinglePlan): the same recursion as mp, but the
// branching over cut-sets becomes a min operator, yielding one plan.
func (e *enumerator) sp(q *cq.Query) plan.Node {
	key := q.String()
	if p, ok := e.spMemo[key]; ok {
		return p
	}
	var out plan.Node
	switch {
	case e.useStop(q):
		if len(q.Atoms) == 1 {
			a := q.Atoms[0]
			out = plan.NewProject(q.Head, plan.NewScan(a, q.PredsOnAtom(a)))
		} else {
			out = e.exactStopPlan(q)
		}
	case !q.IsConnected():
		comps := q.Components()
		subs := make([]plan.Node, len(comps))
		for i, c := range comps {
			subs[i] = e.sp(c)
		}
		out = plan.NewProject(q.Head, plan.NewJoin(subs...))
	default:
		var alts []plan.Node
		for _, y := range e.cuts(q) {
			qy := q.WithHead(append(append([]cq.Var(nil), q.Head...), y.Sorted()...))
			alts = append(alts, plan.NewProject(q.Head, e.sp(qy)))
		}
		out = plan.NewMin(alts...)
	}
	e.spMemo[key] = out
	return out
}

// AllPlans enumerates the plan space of q that the paper counts in the #P
// column of Figure 2 (k! → A000670 for stars, Catalan → A001003 for
// chains): at every level the top projection removes any variable set
// whose removal disconnects the query, and the join below it takes the
// resulting connected components — the finest partition. Schema knowledge
// does not apply: this is the raw plan space used for counting and
// validation.
//
// Note a subtlety of the paper: this recursion undercounts the plans of
// safe dissociations whose joins merge several components under one child
// (e.g. plan 5 of Figure 1b). SafeDissociationPlans enumerates that larger
// space — one plan per reachable safe dissociation — and matches Figure
// 1b; AllPlans matches the Figure 2 sequence counts.
func AllPlans(q *cq.Query) []plan.Node {
	e := &allEnumerator{memo: map[string][]plan.Node{}}
	return e.all(q, false)
}

// SafeDissociationPlans enumerates one query plan per safe dissociation of
// q reachable by a plan (Theorem 18, Figure 1b): in addition to the
// AllPlans recursion, the join below each projection may group the
// connected components arbitrarily — merging components corresponds to
// dissociating their atoms on shared variables. Exponential in the query
// size; intended for small queries in tests and validation.
func SafeDissociationPlans(q *cq.Query) []plan.Node {
	e := &allEnumerator{memo: map[string][]plan.Node{}}
	return e.all(q, true)
}

type allEnumerator struct {
	memo map[string][]plan.Node
}

func (e *allEnumerator) all(q *cq.Query, mergeComponents bool) []plan.Node {
	key := q.String()
	if ps, ok := e.memo[key]; ok {
		return ps
	}
	var out []plan.Node
	if len(q.Atoms) == 1 {
		a := q.Atoms[0]
		out = []plan.Node{plan.NewProject(q.Head, plan.NewScan(a, q.PredsOnAtom(a)))}
		e.memo[key] = out
		return out
	}
	evars := q.EVars()
	n := len(evars)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		y := cq.VarSet{}
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				y.Add(evars[i])
			}
		}
		qy := q.WithHead(append(append([]cq.Var(nil), q.Head...), y.Sorted()...))
		comps := qy.Components()
		if len(comps) < 2 {
			continue
		}
		expand := func(groups [][]int) {
			alts := make([][]plan.Node, len(groups))
			for gi, g := range groups {
				sub := &cq.Query{Name: q.Name}
				for _, ci := range g {
					sub.Atoms = append(sub.Atoms, comps[ci].Atoms...)
					sub.Preds = append(sub.Preds, comps[ci].Preds...)
				}
				vars := cq.NewVarSet(sub.Vars()...)
				for _, h := range qy.Head {
					if vars.Has(h) {
						sub.Head = append(sub.Head, h)
					}
				}
				alts[gi] = e.all(sub, mergeComponents)
			}
			forEachCombination(alts, func(subs []plan.Node) {
				out = append(out, plan.NewProject(q.Head, plan.NewJoin(subs...)))
			})
		}
		if mergeComponents {
			forEachPartition(len(comps), expand)
		} else {
			finest := make([][]int, len(comps))
			for i := range comps {
				finest[i] = []int{i}
			}
			expand(finest)
		}
	}
	out = dedupe(out)
	e.memo[key] = out
	return out
}

// forEachPartition calls fn with every partition of {0, ..., n-1} into at
// least two groups. Groups and their contents are in canonical order
// (each group holds ascending indices; groups ordered by first element).
func forEachPartition(n int, fn func(groups [][]int)) {
	var groups [][]int
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if len(groups) >= 2 {
				fn(groups)
			}
			return
		}
		for gi := range groups {
			groups[gi] = append(groups[gi], i)
			rec(i + 1)
			groups[gi] = groups[gi][:len(groups[gi])-1]
		}
		groups = append(groups, []int{i})
		rec(i + 1)
		groups = groups[:len(groups)-1]
	}
	rec(0)
}

// CountDissociations returns the total number of dissociations of q,
// 2^K with K = Σi |EVar(q) \ Var(gi)| — the #∆ column of Figure 2.
func CountDissociations(q *cq.Query) *big.Int {
	evars := cq.NewVarSet(q.EVars()...)
	k := 0
	for _, a := range q.Atoms {
		k += evars.Minus(cq.NewVarSet(a.Vars()...)).Len()
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(k))
}

// Dissociations enumerates every dissociation of q over its existential
// variables, in lattice order (smaller dissociations first). Exponential;
// intended for small queries in tests and validation.
func Dissociations(q *cq.Query) []plan.Dissociation {
	evars := cq.NewVarSet(q.EVars()...)
	type slot struct {
		rel string
		v   cq.Var
	}
	var slots []slot
	for _, a := range q.Atoms {
		for _, v := range evars.Minus(cq.NewVarSet(a.Vars()...)).Sorted() {
			slots = append(slots, slot{a.Rel, v})
		}
	}
	n := len(slots)
	if n > 24 {
		panic("core: dissociation lattice too large to enumerate")
	}
	masks := make([]uint64, 0, 1<<uint(n))
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		masks = append(masks, mask)
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := popcount(masks[i]), popcount(masks[j])
		if pi != pj {
			return pi < pj
		}
		return masks[i] < masks[j]
	})
	out := make([]plan.Dissociation, 0, len(masks))
	for _, mask := range masks {
		d := plan.NewDissociation()
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				d.Add(slots[i].rel, slots[i].v)
			}
		}
		out = append(out, d)
	}
	return out
}

// MinimalSafeDissociations enumerates the full dissociation lattice of q
// and returns the minimal safe dissociations under the plain partial order
// ⪯ (Definition 15). Exponential; used to cross-validate MinimalPlans on
// small queries (Theorem 20: the minimal plans are exactly the plans of
// these dissociations).
func MinimalSafeDissociations(q *cq.Query) []plan.Dissociation {
	var minimal []plan.Dissociation
	for _, d := range Dissociations(q) {
		if !d.IsSafeFor(q) {
			continue
		}
		dominated := false
		for _, m := range minimal {
			if m.LE(d) {
				dominated = true
				break
			}
		}
		if !dominated {
			minimal = append(minimal, d)
		}
	}
	return minimal
}

// IsSafe reports whether q is safe given the schema knowledge: per
// Corollary 28, q is safe iff the chased query, further dissociated on
// deterministic relations only, can be made hierarchical — equivalently,
// iff the modified Algorithm 1 returns a single plan that is ≡p′ to the
// empty dissociation. The implementation uses the algorithmic
// characterization directly: MinimalPlans returns one plan and that plan's
// dissociation only dissociates deterministic relations or chase
// variables.
func IsSafe(q *cq.Query, sch *Schema) bool {
	plans := MinimalPlans(q, sch)
	if len(plans) != 1 {
		return false
	}
	d := plan.DeltaOf(q, plans[0])
	chase := Chase(q, sch)
	qvars := cq.NewVarSet(q.Vars()...)
	for rel, extra := range d.Extra {
		if !sch.IsProb(rel) {
			continue
		}
		a := q.Atom(rel)
		cl := sch.Closure(cq.NewVarSet(a.Vars()...)).Intersect(qvars)
		cl = cl.Union(chase.ExtraOf(rel))
		if extra.Minus(cl).Len() > 0 {
			return false
		}
	}
	return true
}

func stripAll(q *cq.Query, raw []plan.Node) []plan.Node {
	var out []plan.Node
	for _, p := range raw {
		out = append(out, plan.Strip(q, p))
	}
	return dedupe(out)
}

func dedupe(ps []plan.Node) []plan.Node {
	seen := map[string]bool{}
	var out []plan.Node
	for _, p := range ps {
		if !seen[p.Key()] {
			seen[p.Key()] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// forEachCombination calls fn with every element of the cartesian product
// of alts. The callback's slice is reused across calls.
func forEachCombination(alts [][]plan.Node, fn func([]plan.Node)) {
	pick := make([]plan.Node, len(alts))
	var rec func(int)
	rec = func(i int) {
		if i == len(alts) {
			fn(pick)
			return
		}
		for _, p := range alts[i] {
			pick[i] = p
			rec(i + 1)
		}
	}
	rec(0)
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
