package lapushdb

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lapushdb/internal/anytime"
	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/plan"
)

// DefaultAnytimeMCMaxSamples re-exports the anytime Monte Carlo
// per-answer sample cap: layers that cannot import internal/anytime
// (the server resolves the cap before keying its result cache) must
// agree with the evaluator on the default's value.
const DefaultAnytimeMCMaxSamples = anytime.DefaultMCMaxSamples

// AnytimeOptions configures RankAnytime. The zero value asks for exact
// convergence (Epsilon 0) with default refinement budgets.
type AnytimeOptions struct {
	// Epsilon is the target interval width: refinement stops once every
	// answer's upper − lower <= Epsilon. Must be in [0, 1); 0 demands
	// exact collapse. Use ValidateEpsilon for the shared validation.
	Epsilon float64
	// IgnoreSchema, Workers, CostBasedJoins, DisableOpt2/3 and
	// MaxIntermediateRows mean what they mean on Options.
	IgnoreSchema        bool
	Workers             int
	CostBasedJoins      bool
	DisableOpt2         bool
	DisableOpt3         bool
	MaxIntermediateRows int
	// MCBatch and MCMaxSamples bound the Monte Carlo refinement stage
	// (defaults anytime.DefaultMCBatch / anytime.DefaultMCMaxSamples);
	// ExactBudget bounds each exact-expansion step (default
	// anytime.DefaultExactBudget — deliberately smaller than the exact
	// method's DefaultExactBudget, since the stage runs per refinement
	// round).
	MCBatch      int
	MCMaxSamples int
	ExactBudget  int
	// Seed derives the per-answer sampling streams; results are
	// deterministic for a fixed seed, independent of Workers.
	Seed int64

	// topK enables upper-vs-kth-lower pruning (RankTopKAnytime); memo
	// shares subplans and the row budget across a batch (Batch);
	// onStage observes every refinement step (tests).
	topK    int
	memo    *engine.BatchMemo
	onStage func(anytime.Snapshot)
}

// IntervalAnswer is one answer of an anytime evaluation: the true
// probability lies in [Lower, Upper] (the upper bound is guaranteed by
// dissociation; the lower bound is deterministic once the exact stage
// has touched the answer, and a z=6 confidence bound while only
// sampling has).
type IntervalAnswer struct {
	Values    []string
	Lower     float64
	Upper     float64
	Converged bool
}

// AnytimeStage reports one refinement stage's work.
type AnytimeStage struct {
	Name  string // "plans", "mc", "exact"
	Steps int
}

// AnytimeResult is the outcome of an anytime evaluation: best-so-far
// intervals, ordered by descending upper bound.
type AnytimeResult struct {
	Answers []IntervalAnswer
	// Converged reports whether every answer reached Epsilon.
	Converged bool
	// Degraded is "" normally, "deadline" or "budget" when the context
	// deadline or the intermediate-row budget cut refinement short after
	// at least one completed stage — the intervals remain valid.
	Degraded string
	// Epsilon echoes the request; Width is the widest answer interval.
	Epsilon float64
	Width   float64
	// Refinement statistics.
	Stages         []AnytimeStage
	PlansTotal     int
	PlansEvaluated int
	MCSamples      int
}

// ValidateEpsilon checks an anytime epsilon: it must be a number in
// [0, 1). (1 would make every bare [0, 1] interval "converged", and a
// probability interval wider than 1 is meaningless.)
func ValidateEpsilon(eps float64) error {
	if math.IsNaN(eps) || eps < 0 || eps >= 1 {
		return fmt.Errorf("lapushdb: epsilon must be in [0, 1), got %v", eps)
	}
	return nil
}

// RankAnytime evaluates the query as monotonically tightening
// [lower, upper] intervals, stopping when every answer's width reaches
// opts.Epsilon. See RankAnytimeContext for the deadline behavior.
func (d *DB) RankAnytime(query string, opts *AnytimeOptions) (*AnytimeResult, error) {
	return d.RankAnytimeContext(context.Background(), query, opts)
}

// RankAnytimeContext is RankAnytime honoring ctx — with the anytime
// twist: once at least one refinement stage has completed, a deadline
// (or row-budget exhaustion) returns the best-so-far intervals with
// Degraded set instead of an error. Plain cancellation still errors.
func (d *DB) RankAnytimeContext(ctx context.Context, query string, opts *AnytimeOptions) (*AnytimeResult, error) {
	if opts == nil {
		opts = &AnytimeOptions{}
	}
	q, err := parseChecked(d, query)
	if err != nil {
		return nil, err
	}
	o := &Options{IgnoreSchema: opts.IgnoreSchema}
	sch := d.schema(q, o)
	return d.rankAnytime(ctx, q, core.MinimalPlans(q, sch), core.IsSafe(q, sch), opts)
}

// RankAnytimePrepared is RankAnytimeContext over a prepared statement,
// reusing its enumerated plans. opts.IgnoreSchema must match the
// preparation.
func (d *DB) RankAnytimePrepared(ctx context.Context, p *Prepared, opts *AnytimeOptions) (*AnytimeResult, error) {
	if opts == nil {
		opts = &AnytimeOptions{}
	}
	if opts.IgnoreSchema != p.ignoreSchema {
		return nil, fmt.Errorf("lapushdb: statement prepared with IgnoreSchema=%v, ranked with %v", p.ignoreSchema, opts.IgnoreSchema)
	}
	return d.rankAnytime(ctx, p.q, p.plans, p.safe, opts)
}

// RankAnytimePrepared evaluates a prepared statement within the batch:
// refinement stages share subplan results and the batch-wide
// intermediate-row budget with the batch's other queries.
func (b *Batch) RankAnytimePrepared(ctx context.Context, p *Prepared, opts *AnytimeOptions) (*AnytimeResult, error) {
	if opts == nil {
		opts = &AnytimeOptions{}
	}
	ao := *opts
	ao.memo = b.memo
	return b.d.RankAnytimePrepared(ctx, p, &ao)
}

func (d *DB) rankAnytime(ctx context.Context, q *cq.Query, plans []plan.Node, safe bool, opts *AnytimeOptions) (*AnytimeResult, error) {
	if err := ValidateEpsilon(opts.Epsilon); err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	cfg := anytime.Config{
		Epsilon:             opts.Epsilon,
		Workers:             opts.Workers,
		CostBasedJoins:      opts.CostBasedJoins,
		ReuseSubplans:       !opts.DisableOpt2,
		SemiJoin:            !opts.DisableOpt3,
		MaxIntermediateRows: opts.MaxIntermediateRows,
		Safe:                safe,
		Memo:                opts.memo,
		Scope:               d.SchemaFingerprint(),
		MCBatch:             opts.MCBatch,
		MCMaxSamples:        opts.MCMaxSamples,
		ExactBudget:         opts.ExactBudget,
		Seed:                opts.Seed,
		TopK:                opts.topK,
		OnStage:             opts.onStage,
	}
	res, err := anytime.Evaluate(ctx, d.db, q, plans, cfg)
	if err != nil {
		return nil, err
	}
	out := &AnytimeResult{
		Converged:      res.Converged,
		Degraded:       res.Degraded,
		Epsilon:        opts.Epsilon,
		Width:          res.Width(),
		PlansTotal:     res.PlansTotal,
		PlansEvaluated: res.PlansEvaluated,
		MCSamples:      res.MCSamples,
	}
	for _, s := range res.Stages {
		out.Stages = append(out.Stages, AnytimeStage{Name: s.Name, Steps: s.Steps})
	}
	for _, a := range res.Answers {
		if a.Pruned {
			continue
		}
		out.Answers = append(out.Answers, IntervalAnswer{
			Values:    d.decode(a.Key),
			Lower:     a.Lower,
			Upper:     a.Upper,
			Converged: a.Converged,
		})
	}
	sortIntervalAnswers(out.Answers)
	return out, nil
}

// sortIntervalAnswers orders by descending upper bound, then descending
// lower bound, then values ascending — the interval analogue of the
// score ordering of sortAnswers.
func sortIntervalAnswers(answers []IntervalAnswer) {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Upper != answers[j].Upper {
			return answers[i].Upper > answers[j].Upper
		}
		if answers[i].Lower != answers[j].Lower {
			return answers[i].Lower > answers[j].Lower
		}
		a, b := answers[i].Values, answers[j].Values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
