package lapushdb_test

import (
	"fmt"

	"lapushdb"
)

// Example demonstrates the core workflow: build a tuple-independent
// probabilistic database and rank the answers of a #P-hard query with
// guaranteed upper bounds.
func Example() {
	db := lapushdb.Open()
	likes, _ := db.CreateRelation("Likes", "user", "movie")
	stars, _ := db.CreateRelation("Stars", "movie", "actor")
	fan, _ := db.CreateRelation("Fan", "actor")
	_ = likes.Insert(0.9, "ann", "heat")
	_ = likes.Insert(0.5, "bob", "heat")
	_ = stars.Insert(0.8, "heat", "deniro")
	_ = fan.Insert(0.6, "deniro")

	answers, _ := db.Rank("q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)", nil)
	for _, a := range answers {
		fmt.Printf("%s %.4f\n", a.Values[0], a.Score)
	}
	// Output:
	// ann 0.4320
	// bob 0.2400
}

// ExampleDB_Explain shows how a query's minimal plans and their
// dissociations are inspected, and how safety is reported.
func ExampleDB_Explain() {
	db := lapushdb.Open()
	r, _ := db.CreateRelation("R", "x")
	s, _ := db.CreateRelation("S", "x", "y")
	t, _ := db.CreateRelation("T", "y")
	_ = r.Insert(0.5, 1)
	_ = s.Insert(0.5, 1, 2)
	_ = t.Insert(0.5, 2)

	ex, _ := db.Explain("q() :- R(x), S(x, y), T(y)")
	fmt.Println("safe:", ex.Safe)
	for _, d := range ex.Dissociations {
		fmt.Println("dissociation:", d)
	}
	// Output:
	// safe: false
	// dissociation: {T^{x}}
	// dissociation: {R^{y}}
}

// ExampleDB_Explain_schemaKnowledge shows keys turning a #P-hard query
// safe (Section 3.3.2 of the paper): with the functional dependency
// x → y from S's key, a single exact plan suffices.
func ExampleDB_Explain_schemaKnowledge() {
	db := lapushdb.Open()
	r, _ := db.CreateRelation("R", "x")
	s, _ := db.CreateRelation("S", "x", "y")
	t, _ := db.CreateRelation("T", "y")
	s.SetKey("x")
	_ = r.Insert(0.5, 1)
	_ = s.Insert(0.5, 1, 2)
	_ = t.Insert(0.5, 2)

	ex, _ := db.Explain("q() :- R(x), S(x, y), T(y)")
	fmt.Println("safe:", ex.Safe, "plans:", len(ex.Plans))
	// Output:
	// safe: true plans: 1
}

// ExampleDB_Lineage shows Boolean provenance with read-once
// factorization.
func ExampleDB_Lineage() {
	db := lapushdb.Open()
	r, _ := db.CreateRelation("R", "x")
	s, _ := db.CreateRelation("S", "x", "y")
	_ = r.Insert(0.5, 1)
	_ = s.Insert(0.4, 1, 4)
	_ = s.Insert(0.7, 1, 5)

	infos, _ := db.Lineage("q() :- R(x), S(x, y)")
	for _, info := range infos {
		fmt.Println(info.Formula)
		fmt.Println("read-once:", info.ReadOnce)
	}
	// Output:
	// R(1)·S(1, 4) ∨ R(1)·S(1, 5)
	// read-once: true
}

// ExampleNewQuery shows the programmatic query builder.
func ExampleNewQuery() {
	q := lapushdb.NewQuery("q").
		Head("user").
		Atom("Likes", "user", "movie").
		Where("movie", "like", "%heat%")
	fmt.Println(q)
	// Output:
	// q(user) :- Likes(user, movie), movie like '%heat%'
}
