package lapushdb

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/workload"
)

// biggerDB builds a database with many answers so top-k pruning has
// something to prune.
func biggerDB(t *testing.T, users int) *DB {
	t.Helper()
	db := Open()
	likes, err := db.CreateRelation("Likes", "user", "movie")
	if err != nil {
		t.Fatal(err)
	}
	stars, err := db.CreateRelation("Stars", "movie", "actor")
	if err != nil {
		t.Fatal(err)
	}
	fan, err := db.CreateRelation("Fan", "actor")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	movies := []string{"heat", "ronin", "casino", "alien", "solaris"}
	actors := []string{"a1", "a2", "a3", "a4"}
	for u := 0; u < users; u++ {
		user := string(rune('a'+u%26)) + string(rune('a'+(u/26)%26))
		for m := 0; m < 2+rng.Intn(3); m++ {
			if err := likes.Insert(rng.Float64(), user, movies[rng.Intn(len(movies))]); err != nil {
				// Ignore duplicate-shaped inserts: tuples may repeat, which
				// is fine for a probabilistic DB (distinct events).
				t.Fatal(err)
			}
		}
	}
	for _, m := range movies {
		for a := 0; a < 2; a++ {
			if err := stars.Insert(rng.Float64(), m, actors[rng.Intn(len(actors))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, a := range actors {
		if err := fan.Insert(rng.Float64(), a); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

const topkQuery = "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"

func TestRankTopKMatchesExact(t *testing.T) {
	db := biggerDB(t, 30)
	full, err := db.Rank(topkQuery, &Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 10} {
		top, err := db.RankTopK(topkQuery, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if want > len(full) {
			want = len(full)
		}
		if len(top) != want {
			t.Fatalf("k=%d: got %d answers, want %d", k, len(top), want)
		}
		for i := 0; i < want; i++ {
			if math.Abs(top[i].Score-full[i].Score) > 1e-12 {
				t.Errorf("k=%d position %d: score %v, want %v (%v vs %v)",
					k, i, top[i].Score, full[i].Score, top[i].Values, full[i].Values)
			}
		}
	}
}

// TestRankTopKAnytimeMatchesFull is the differential contract of
// bound-pruned top-k: on every differential shape, RankTopKAnytime's
// converged answers are exactly the top-k slice of the full
// RankAnytime result — same values, and bit-identical [lower, upper]
// intervals, because sampler streams are derived from answer keys and
// each answer refines until its own convergence regardless of what
// else is pruned. Holds at Workers 1 and 4 (run under -race this also
// exercises the pruning bookkeeping for data races).
func TestRankTopKAnytimeMatchesFull(t *testing.T) {
	type shape struct {
		label string
		query string
		db    *DB
		k     int
	}
	rng := rand.New(rand.NewSource(57))
	var shapes []shape
	{
		edb, q := workload.Chain(3, 500, 70, 0.5, rng)
		shapes = append(shapes, shape{"chain3", q.String(), fromEngineDB(t, edb), 5})
	}
	{
		// The star query is Boolean — a single answer — so k=1 checks
		// the degenerate prune-nothing path.
		edb, q := workload.Star(3, 40, 12, 0.5, rng)
		shapes = append(shapes, shape{"star3", q.String(), fromEngineDB(t, edb), 1})
	}
	{
		tp := workload.NewTPCH(0.01, 0.1, rng)
		shapes = append(shapes, shape{"tpch", tp.Query(tp.Suppliers, "%red%").String(), fromEngineDB(t, tp.DB), 3})
	}

	for _, sh := range shapes {
		for _, workers := range []int{1, 4} {
			opts := AnytimeOptions{Epsilon: 0.05, Workers: workers, Seed: 11, MCMaxSamples: 2048}
			full, err := sh.db.RankAnytime(sh.query, &opts)
			if err != nil {
				t.Fatalf("%s w=%d: full: %v", sh.label, workers, err)
			}
			if !full.Converged {
				t.Fatalf("%s w=%d: full run did not converge (width %g)", sh.label, workers, full.Width)
			}
			top, err := sh.db.RankTopKAnytime(context.Background(), sh.query, sh.k, &opts)
			if err != nil {
				t.Fatalf("%s w=%d: topk: %v", sh.label, workers, err)
			}
			if !top.Converged {
				t.Fatalf("%s w=%d: top-k run did not converge (width %g)", sh.label, workers, top.Width)
			}
			want := sh.k
			if want > len(full.Answers) {
				want = len(full.Answers)
			}
			if len(top.Answers) != want {
				t.Fatalf("%s w=%d: %d answers, want %d", sh.label, workers, len(top.Answers), want)
			}
			for i, a := range top.Answers {
				f := full.Answers[i]
				if stringsKey(a.Values) != stringsKey(f.Values) {
					t.Fatalf("%s w=%d rank %d: pruned answer %v, full answer %v", sh.label, workers, i, a.Values, f.Values)
				}
				if a.Lower != f.Lower || a.Upper != f.Upper {
					t.Fatalf("%s w=%d rank %d (%v): pruned interval [%v, %v] != full [%v, %v]",
						sh.label, workers, i, a.Values, a.Lower, a.Upper, f.Lower, f.Upper)
				}
			}
		}
	}
}

func TestRankTopKErrors(t *testing.T) {
	db := movieDB(t)
	if _, err := db.RankTopK(topkQuery, 0, nil); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := db.RankTopK("broken", 3, nil); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := db.RankTopK("q(x) :- Missing(x)", 3, nil); err == nil {
		t.Error("unknown relation should fail")
	}
}

func TestRankUnionDissociationUpperBound(t *testing.T) {
	db := movieDB(t)
	queries := []string{
		"q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)",
		"q(user) :- Likes(user, movie)",
	}
	diss, err := db.RankUnion(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := db.RankUnion(queries, &Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if len(diss) != len(ex) {
		t.Fatalf("answers %d vs %d", len(diss), len(ex))
	}
	score := func(as []Answer, v string) (float64, bool) {
		for _, a := range as {
			if a.Values[0] == v {
				return a.Score, true
			}
		}
		return 0, false
	}
	for _, a := range ex {
		got, ok := score(diss, a.Values[0])
		if !ok {
			t.Fatalf("answer %v missing from dissociation union", a.Values)
		}
		if got < a.Score-1e-12 {
			t.Errorf("%v: union upper bound %v below exact %v (FKG violated?)", a.Values, got, a.Score)
		}
	}
	// Union probabilities dominate each arm's probability.
	arm, _ := db.Rank(queries[1], &Options{Method: Exact})
	for _, a := range arm {
		got, ok := score(ex, a.Values[0])
		if !ok || got < a.Score-1e-12 {
			t.Errorf("%v: union exact %v below arm exact %v", a.Values, got, a.Score)
		}
	}
}

func TestRankUnionMonteCarlo(t *testing.T) {
	db := movieDB(t)
	queries := []string{
		"q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)",
		"q(user) :- Likes(user, movie)",
	}
	ex, err := db.RankUnion(queries, &Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	mcAs, err := db.RankUnion(queries, &Options{Method: MonteCarlo, MCSamples: 100000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range ex {
		for _, b := range mcAs {
			if b.Values[0] == a.Values[0] && math.Abs(b.Score-a.Score) > 0.01 {
				t.Errorf("%v: MC %v vs exact %v", a.Values, b.Score, a.Score)
			}
		}
	}
}

func TestRankUnionErrors(t *testing.T) {
	db := movieDB(t)
	if _, err := db.RankUnion(nil, nil); err == nil {
		t.Error("empty union should fail")
	}
	if _, err := db.RankUnion([]string{"bad"}, nil); err == nil {
		t.Error("bad arm should fail")
	}
	if _, err := db.RankUnion([]string{
		"q(user) :- Likes(user, movie)",
		"q(user, movie) :- Likes(user, movie)",
	}, nil); err == nil {
		t.Error("mismatched arities should fail")
	}
	if _, err := db.RankUnion([]string{"q(user) :- Likes(user, movie)"},
		&Options{Method: LineageSize}); err == nil {
		t.Error("unsupported method should fail")
	}
}
