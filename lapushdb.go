// Package lapushdb is an in-memory probabilistic database with
// dissociation-based approximate query answering, implementing
// Gatterbauer & Suciu, "Approximate Lifted Inference with Probabilistic
// Databases" (VLDB 2015).
//
// A LaPushDB database stores tuple-independent probabilistic relations:
// every tuple carries a probability and all tuples are independent
// events. Self-join-free conjunctive queries, written in datalog style,
//
//	q(z) :- R(z, x), S(x, y), T(y)
//
// are answered with one probability score per answer tuple. Safe
// (hierarchical) queries get their exact probability; for #P-hard queries
// the score is the propagation score ρ — the minimum over all minimal
// query plans, each an upper bound on the true probability — which ranks
// answers with high precision at a small multiple of deterministic SQL
// cost. Schema knowledge (deterministic relations, keys) shrinks the set
// of plans and widens the class of exactly-computable queries.
//
// The Method field of Options also exposes the paper's baselines: exact
// weighted model counting on the lineage (DPLL or OBDD compilation),
// Monte Carlo sampling (naive or the Karp–Luby FPRAS), ranking by
// lineage size, and deterministic (set-semantics) evaluation. Beyond
// Rank, the API offers exact top-k with bound-driven early termination
// (RankTopK), unions of conjunctive queries (RankUnion), Boolean
// provenance with read-once factorization (Lineage), tuple-influence
// explanations (Influence), operator profiling (Profile), plan
// visualization (PlanDOT), and snapshot persistence (Save/Load).
package lapushdb

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/exact"
	"lapushdb/internal/lineage"
	"lapushdb/internal/mc"
	"lapushdb/internal/obdd"
	"lapushdb/internal/plan"
	"lapushdb/internal/viz"
)

// DB is a tuple-independent probabilistic database.
type DB struct {
	db *engine.DB
}

// Open creates an empty database.
func Open() *DB { return &DB{db: engine.NewDB()} }

// Relation is a handle to one relation of the database.
type Relation struct {
	r  *engine.Relation
	db *engine.DB
}

// CreateRelation adds a probabilistic relation with the given columns.
func (d *DB) CreateRelation(name string, cols ...string) (*Relation, error) {
	if d.db.Relation(name) != nil {
		return nil, fmt.Errorf("lapushdb: relation %s already exists", name)
	}
	return &Relation{r: d.db.CreateRelation(name, cols), db: d.db}, nil
}

// CreateDeterministicRelation adds a relation whose tuples are all
// certain. Declaring determinism is schema knowledge: it reduces the
// number of plans needed and can make otherwise #P-hard queries exact.
func (d *DB) CreateDeterministicRelation(name string, cols ...string) (*Relation, error) {
	if d.db.Relation(name) != nil {
		return nil, fmt.Errorf("lapushdb: relation %s already exists", name)
	}
	return &Relation{r: d.db.CreateDeterministicRelation(name, cols), db: d.db}, nil
}

// Relation returns a handle to an existing relation, or nil.
func (d *DB) Relation(name string) *Relation {
	r := d.db.Relation(name)
	if r == nil {
		return nil
	}
	return &Relation{r: r, db: d.db}
}

// Insert adds a tuple with the given probability. Values may be string,
// int, or int64; deterministic relations require p == 1.
func (r *Relation) Insert(p float64, values ...any) error {
	if len(values) != len(r.r.Cols) {
		return fmt.Errorf("lapushdb: %s expects %d values, got %d", r.r.Name, len(r.r.Cols), len(values))
	}
	tuple := make([]engine.Value, len(values))
	for i, v := range values {
		switch t := v.(type) {
		case string:
			tuple[i] = r.db.EncodeConst(t)
		case int:
			tuple[i] = r.db.Int(int64(t))
		case int64:
			tuple[i] = r.db.Int(t)
		default:
			return fmt.Errorf("lapushdb: unsupported value type %T", v)
		}
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("lapushdb: probability %v out of [0, 1]", p)
	}
	r.r.Insert(tuple, p)
	return nil
}

// SetKey declares the relation's primary key. Keys contribute functional
// dependencies that reduce the number of plans and widen the class of
// exactly-computable queries.
func (r *Relation) SetKey(cols ...string) { r.r.SetKey(cols...) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.r.Len() }

// CreateIndex declares a hash index on a column, accelerating scans
// with equality selections (constants in atoms, = predicates). Built
// lazily; maintained automatically across inserts.
func (r *Relation) CreateIndex(col string) error { return r.r.CreateIndex(col) }

// CreateRangeIndex declares a sorted index on a numeric column,
// accelerating <, <=, >, >= predicates (e.g. the TPC-H query's
// "s <= $1").
func (r *Relation) CreateRangeIndex(col string) error { return r.r.CreateRangeIndex(col) }

// Method selects how answer probabilities are computed.
type Method int

const (
	// Dissociation (default) computes the propagation score ρ: exact for
	// safe queries, a guaranteed upper bound otherwise.
	Dissociation Method = iota
	// Exact computes the true probability by weighted model counting on
	// the lineage (#P-hard; may be infeasible for large lineages).
	Exact
	// MonteCarlo estimates the probability by sampling the lineage.
	MonteCarlo
	// LineageSize ranks by the number of lineage clauses (a
	// non-probabilistic baseline; "scores" are clause counts).
	LineageSize
	// Deterministic evaluates under set semantics; every answer scores 1.
	Deterministic
	// KarpLuby estimates the probability with the Karp–Luby–Madras
	// coverage FPRAS: unlike naive MonteCarlo its relative error does not
	// degrade for small probabilities (the regime the paper recommends
	// for dissociation quality).
	KarpLuby
	// ExactOBDD computes the exact probability by compiling each lineage
	// into a reduced ordered BDD (the Olteanu–Huang / SPROUT approach the
	// paper compares against). Like Exact it is #P-hard in general.
	ExactOBDD
)

// Options configures Rank.
type Options struct {
	// Method selects the scoring method (default Dissociation).
	Method Method
	// DisableOpt1 evaluates all minimal plans separately instead of the
	// merged single plan (Algorithm 2).
	DisableOpt1 bool
	// DisableOpt2 turns off reuse of common subplan results (views).
	DisableOpt2 bool
	// DisableOpt3 turns off the deterministic semi-join reduction.
	DisableOpt3 bool
	// IgnoreSchema disregards deterministic relations and keys during
	// plan enumeration.
	IgnoreSchema bool
	// Parallel evaluates the minimal plans on separate goroutines
	// (implies DisableOpt1: the merged single plan is inherently
	// sequential). Workers bounds the concurrency (default 4).
	Parallel bool
	// Workers bounds evaluation parallelism. It caps the goroutines of
	// Parallel, and independently enables intra-plan morsel parallelism
	// for the Dissociation method: operators split row ranges into
	// fixed-size chunks evaluated on up to Workers goroutines. Results
	// are bit-identical to sequential evaluation for every setting.
	// Values <= 1 evaluate each plan sequentially.
	Workers int
	// Stats, when non-nil, receives execution counters for the query
	// (Dissociation method only).
	Stats *RankStats
	// CostBasedJoins orders k-ary joins with a Selinger-style dynamic
	// program over cardinality estimates instead of the greedy heuristic.
	CostBasedJoins bool
	// MaxIntermediateRows caps the total number of intermediate result
	// rows one Rank evaluation may materialize (Dissociation method
	// only): scan outputs, join outputs, and projection groups, summed
	// across all plans of the query. Exceeding the cap aborts the query
	// with an error wrapping ErrBudget instead of exhausting memory.
	// <= 0 disables the cap.
	MaxIntermediateRows int
	// MCSamples is the sample count for MonteCarlo (default
	// DefaultMCSamples).
	MCSamples int
	// Seed seeds the MonteCarlo sampler.
	Seed int64
	// ExactBudget bounds the exact solver's work (default
	// DefaultExactBudget nodes).
	ExactBudget int

	// memo, when non-nil, shares canonicalized subplan results and one
	// intermediate-row budget across the queries of a batch. It is set
	// internally by Batch (see batch.go); the zero value evaluates
	// standalone.
	memo *engine.BatchMemo
}

// ErrBudget is the typed error wrapped by Rank's failure when an
// evaluation exceeds Options.MaxIntermediateRows. Classify with
// errors.Is(err, lapushdb.ErrBudget).
var ErrBudget = engine.ErrBudget

// Evaluation defaults, exported so every layer that must agree on them
// — option resolution here, the server's result-cache keys, client
// documentation — names one constant instead of repeating the literal.
const (
	// DefaultMCSamples is the sample count used by the MonteCarlo and
	// KarpLuby methods when Options.MCSamples is unset.
	DefaultMCSamples = 1000
	// DefaultExactBudget is the exact solver's node budget when
	// Options.ExactBudget is unset.
	DefaultExactBudget = 50_000_000
)

// Answer is one query answer: its head values (decoded to strings, in
// the order of the sorted head variables) and its probability score.
type Answer struct {
	Values []string
	Score  float64
}

// RankStats reports execution counters from one Rank call (see
// Options.Stats).
type RankStats struct {
	// Partitions is the number of morsel chunks and hash-join partitions
	// processed by partitioned operators. Chunk layout depends only on
	// input sizes, so the count is the same for every Workers setting;
	// zero when every operator input fit in a single chunk.
	Partitions int64
	// ParallelOps is the number of operator phases that ran partitioned.
	ParallelOps int64
	// SharedSubplanHits and SharedSubplanMisses count cross-query
	// subplan memo lookups during batch evaluation (see RankBatch):
	// hits were served from another query's work, misses were computed
	// and shared. Both report the batch's running totals at the time of
	// the call, and stay zero outside batch evaluation.
	SharedSubplanHits   int64
	SharedSubplanMisses int64
}

// Rank evaluates the query and returns its answers ordered by descending
// score. The query must be a self-join-free conjunctive query over the
// database's relations.
func (d *DB) Rank(query string, opts *Options) ([]Answer, error) {
	return d.RankContext(context.Background(), query, opts)
}

// RankContext is Rank honoring ctx: the engine's evaluation loops poll
// the context periodically and the call returns its error
// (context.Canceled or context.DeadlineExceeded) promptly when it is
// done, instead of running the query to completion.
func (d *DB) RankContext(ctx context.Context, query string, opts *Options) ([]Answer, error) {
	if opts == nil {
		opts = &Options{}
	}
	q, err := parseChecked(d, query)
	if err != nil {
		return nil, err
	}
	return d.rank(ctx, q, nil, opts)
}

// parseChecked parses a query and validates it against the schema.
func parseChecked(d *DB, query string) (*cq.Query, error) {
	q, err := cq.Parse(query)
	if err != nil {
		return nil, err
	}
	if err := d.checkQuery(q); err != nil {
		return nil, err
	}
	return q, nil
}

// rank dispatches a parsed query to its method's evaluation path. When
// pre is non-nil its pre-enumerated plans are reused (RankPrepared).
func (d *DB) rank(ctx context.Context, q *cq.Query, pre *Prepared, opts *Options) ([]Answer, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	switch opts.Method {
	case Dissociation:
		return d.rankDissociation(ctx, q, pre, opts)
	case Exact, ExactOBDD:
		return d.rankLineageBased(ctx, q, opts, true)
	case MonteCarlo, KarpLuby:
		return d.rankLineageBased(ctx, q, opts, false)
	case LineageSize:
		return d.rankLineageSize(ctx, q, opts)
	case Deterministic:
		return d.rankDeterministic(ctx, q)
	default:
		return nil, fmt.Errorf("lapushdb: unknown method %d", opts.Method)
	}
}

func (d *DB) checkQuery(q *cq.Query) error {
	for _, a := range q.Atoms {
		r := d.db.Relation(a.Rel)
		if r == nil {
			return fmt.Errorf("lapushdb: unknown relation %s", a.Rel)
		}
		if len(a.Args) != r.Arity() {
			return fmt.Errorf("lapushdb: atom %s has arity %d, relation has %d", a, len(a.Args), r.Arity())
		}
	}
	return nil
}

func (d *DB) schema(q *cq.Query, opts *Options) *core.Schema {
	if opts.IgnoreSchema {
		return nil
	}
	return engine.SchemaFor(d.db, q)
}

func (d *DB) rankDissociation(ctx context.Context, q *cq.Query, pre *Prepared, opts *Options) ([]Answer, error) {
	eopts := engine.Options{
		ReuseSubplans:       !opts.DisableOpt2,
		SemiJoin:            !opts.DisableOpt3,
		CostBasedJoins:      opts.CostBasedJoins,
		Workers:             opts.Workers,
		MaxIntermediateRows: opts.MaxIntermediateRows,
		Memo:                opts.memo,
	}
	var stats *engine.EvalStats
	if opts.Stats != nil {
		stats = &engine.EvalStats{}
		eopts.Stats = stats
	}
	// Plans come from the prepared statement when available — skipping
	// the minimal-plan enumeration is the point of the plan cache.
	minPlans := func() []plan.Node {
		if pre != nil {
			return pre.plans
		}
		return core.MinimalPlans(q, d.schema(q, opts))
	}
	var res *engine.Result
	err := engine.TrapCancel(func() {
		switch {
		case opts.Parallel:
			res = engine.EvalPlansParallelCtx(ctx, d.db, q, minPlans(), eopts, opts.Workers)
		case opts.DisableOpt1:
			res = engine.EvalPlansCtx(ctx, d.db, q, minPlans(), eopts)
		default:
			var sp plan.Node
			if pre != nil {
				sp = pre.single
			} else {
				sp = core.SinglePlan(q, d.schema(q, opts))
			}
			res = engine.NewEvaluatorCtx(ctx, d.db, q, eopts).Eval(sp)
		}
	})
	if err != nil {
		return nil, err
	}
	if stats != nil {
		opts.Stats.Partitions = stats.Partitions()
		opts.Stats.ParallelOps = stats.ParallelOps()
		if opts.memo != nil {
			opts.Stats.SharedSubplanHits = opts.memo.SharedHits()
			opts.Stats.SharedSubplanMisses = opts.memo.SharedMisses()
		}
	}
	return d.toAnswers(res), nil
}

func (d *DB) rankLineageBased(ctx context.Context, q *cq.Query, opts *Options, exactMethod bool) ([]Answer, error) {
	lin, err := d.evalLineage(ctx, q, !opts.DisableOpt3)
	if err != nil {
		return nil, err
	}
	answers := make([]Answer, lin.Len())
	budget := opts.ExactBudget
	if budget <= 0 {
		budget = DefaultExactBudget
	}
	samples := opts.MCSamples
	if samples <= 0 {
		samples = DefaultMCSamples
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < lin.Len(); i++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		var p float64
		if exactMethod {
			var err error
			if opts.Method == ExactOBDD {
				p, err = obddProb(lin.Clauses(i), d.db.VarProbs(), budget)
			} else {
				p, err = exact.ProbBudget(lin.Clauses(i), d.db.VarProbs(), budget)
			}
			if err != nil {
				return nil, fmt.Errorf("lapushdb: exact inference infeasible for answer %v: %w", d.decode(lin.Key(i)), err)
			}
		} else {
			var err error
			if opts.Method == KarpLuby {
				p, err = mc.KarpLubyCtx(ctx, lin.Clauses(i), d.db.VarProbs(), samples, rng)
			} else {
				p, err = mc.EstimateCtx(ctx, lin.Clauses(i), d.db.VarProbs(), samples, rng)
			}
			if err != nil {
				return nil, err
			}
		}
		answers[i] = Answer{Values: d.decode(lin.Key(i)), Score: p}
	}
	sortAnswers(answers)
	return answers, nil
}

// evalLineage computes the query's lineage under ctx, with the semi-join
// reduction applied first when reduce is set.
func (d *DB) evalLineage(ctx context.Context, q *cq.Query, reduce bool) (*engine.Lineage, error) {
	var lin *engine.Lineage
	err := engine.TrapCancel(func() {
		var reduced map[string][]int32
		if reduce {
			reduced = engine.SemiJoinReduceCtx(ctx, d.db, q)
		}
		lin = engine.EvalLineageCtx(ctx, d.db, q, reduced)
	})
	if err != nil {
		return nil, err
	}
	return lin, nil
}

func (d *DB) rankLineageSize(ctx context.Context, q *cq.Query, opts *Options) ([]Answer, error) {
	lin, err := d.evalLineage(ctx, q, !opts.DisableOpt3)
	if err != nil {
		return nil, err
	}
	answers := make([]Answer, lin.Len())
	for i := 0; i < lin.Len(); i++ {
		answers[i] = Answer{Values: d.decode(lin.Key(i)), Score: float64(lin.Size(i))}
	}
	sortAnswers(answers)
	return answers, nil
}

func (d *DB) rankDeterministic(ctx context.Context, q *cq.Query) ([]Answer, error) {
	var res *engine.Result
	err := engine.TrapCancel(func() {
		res = engine.EvalDeterministicCtx(ctx, d.db, q)
	})
	if err != nil {
		return nil, err
	}
	return d.toAnswers(res), nil
}

func (d *DB) toAnswers(res *engine.Result) []Answer {
	answers := make([]Answer, res.Len())
	for i := 0; i < res.Len(); i++ {
		row := res.Row(i)
		vals := make([]engine.Value, len(row))
		copy(vals, row)
		answers[i] = Answer{Values: d.decode(vals), Score: res.Score(i)}
	}
	sortAnswers(answers)
	return answers
}

func (d *DB) decode(vals []engine.Value) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = d.db.Decode(v)
	}
	return out
}

// obddProb computes the exact probability via a reduced ordered BDD.
func obddProb(clauses [][]int32, probs []float64, budget int) (float64, error) {
	b, err := obdd.Build(clauses, obdd.FrequencyOrder(clauses), budget)
	if err != nil {
		return 0, err
	}
	return b.Prob(probs), nil
}

// newSeededRand returns a rand.Rand seeded for reproducible sampling.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// mcEstimate adapts the internal Monte Carlo estimator.
func mcEstimate(clauses [][]int32, probs []float64, samples int, rng *rand.Rand) float64 {
	return mc.Estimate(clauses, probs, samples, rng)
}

func sortAnswers(answers []Answer) {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Score != answers[j].Score {
			return answers[i].Score > answers[j].Score
		}
		a, b := answers[i].Values, answers[j].Values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Explanation describes how a query would be evaluated.
type Explanation struct {
	// Safe reports whether the query is safe given the schema knowledge
	// (its probability is computed exactly by a single plan).
	Safe bool
	// Plans renders every minimal plan in project-away notation.
	Plans []string
	// Dissociations renders the dissociation of each minimal plan.
	Dissociations []string
	// SinglePlan renders the Opt1 merged plan.
	SinglePlan string
}

// Explain parses the query and reports its minimal plans, their
// dissociations, and whether the query is safe under the database's
// schema knowledge. An optional Options value controls schema use
// (IgnoreSchema); evaluation-strategy fields are ignored.
func (d *DB) Explain(query string, opts ...*Options) (*Explanation, error) {
	return d.ExplainContext(context.Background(), query, opts...)
}

// ExplainContext is Explain honoring ctx at stage boundaries.
func (d *DB) ExplainContext(ctx context.Context, query string, opts ...*Options) (*Explanation, error) {
	o := &Options{}
	if len(opts) > 0 && opts[0] != nil {
		o = opts[0]
	}
	p, err := d.PrepareContext(ctx, query, o)
	if err != nil {
		return nil, err
	}
	return p.Explanation(), nil
}

// ScaleProbs multiplies every tuple probability by f ∈ (0, 1]. Scaling
// down tightens the dissociation approximation (Proposition 21 of the
// paper) at the cost of absolute probability magnitudes.
func (d *DB) ScaleProbs(f float64) { d.db.ScaleProbs(f) }

// Clone returns a deep copy of the database.
func (d *DB) Clone() *DB { return &DB{db: d.db.Clone()} }

// Save writes the database to w in a binary snapshot format readable by
// Load.
func (d *DB) Save(w io.Writer) error { return d.db.Save(w) }

// Load reads a database snapshot written by Save.
func Load(r io.Reader) (*DB, error) {
	db, err := engine.Load(r)
	if err != nil {
		return nil, err
	}
	return &DB{db: db}, nil
}

// LineageInfo describes one answer's Boolean provenance.
type LineageInfo struct {
	// Values are the answer's head values.
	Values []string
	// Size is the number of DNF clauses (satisfying assignments).
	Size int
	// Formula renders the lineage, e.g.
	// "Likes(ann, heat)·Stars(heat, deniro) ∨ ...". Tuples of
	// deterministic relations carry no variables and are omitted.
	Formula string
	// ReadOnce reports whether the lineage admits a read-once
	// factorization (exact probability computable in linear time).
	ReadOnce bool
	// Factorization is the read-once form when ReadOnce is true.
	Factorization string
}

// Lineage computes every answer's Boolean provenance: the DNF over the
// database's uncertain tuples whose probability is the answer's true
// probability.
func (d *DB) Lineage(query string) ([]LineageInfo, error) {
	return d.LineageContext(context.Background(), query)
}

// LineageContext is Lineage honoring ctx: the lineage evaluation loops
// poll the context and return its error promptly when it is done.
func (d *DB) LineageContext(ctx context.Context, query string) ([]LineageInfo, error) {
	q, err := cq.Parse(query)
	if err != nil {
		return nil, err
	}
	if err := d.checkQuery(q); err != nil {
		return nil, err
	}
	lin, err := d.evalLineage(ctx, q, true)
	if err != nil {
		return nil, err
	}
	labels := d.db.VarLabels()
	name := func(v int32) string {
		if s, ok := labels[v]; ok {
			return s
		}
		return fmt.Sprintf("x%d", v)
	}
	out := make([]LineageInfo, lin.Len())
	for i := 0; i < lin.Len(); i++ {
		f := lineage.DNF(lin.Clauses(i))
		info := LineageInfo{
			Values:  d.decode(lin.Key(i)),
			Size:    lin.Size(i),
			Formula: f.String(name),
		}
		if tree, ok := lineage.Factor(f); ok {
			info.ReadOnce = true
			info.Factorization = tree.String()
		}
		out[i] = info
	}
	return out, nil
}

// PlanDOT renders the query's minimal plans (kind "plans") or its full
// dissociation lattice (kind "lattice", exponential — small queries
// only) as Graphviz DOT, the form of the paper's Figure 1.
func (d *DB) PlanDOT(query, kind string) (string, error) {
	q, err := cq.Parse(query)
	if err != nil {
		return "", err
	}
	if err := d.checkQuery(q); err != nil {
		return "", err
	}
	switch kind {
	case "plans":
		return viz.MinimalPlansDOT(q, engine.SchemaFor(d.db, q)), nil
	case "lattice":
		return viz.LatticeDOT(q), nil
	default:
		return "", fmt.Errorf("lapushdb: unknown DOT kind %q (want plans or lattice)", kind)
	}
}

// Profile evaluates the query's merged dissociation plan and returns an
// indented operator tree with per-node output cardinalities and
// inclusive times — the engine's EXPLAIN ANALYZE.
func (d *DB) Profile(query string) (string, error) {
	q, err := cq.Parse(query)
	if err != nil {
		return "", err
	}
	if err := d.checkQuery(q); err != nil {
		return "", err
	}
	sch := engine.SchemaFor(d.db, q)
	sp := core.SinglePlan(q, sch)
	e := engine.NewEvaluator(d.db, q, engine.Options{ReuseSubplans: true, SemiJoin: true})
	_, stats := e.EvalProfiled(sp)
	return engine.FormatProfile(stats), nil
}
