// Top-k and unions: the dissociation upper bounds are more than a
// ranking heuristic — because every propagation score provably
// upper-bounds the true probability, they support a threshold-style
// top-k operator that returns the EXACT top answers while running exact
// inference on only a few lineages, and FKG-sound upper bounds for
// unions of conjunctive queries.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lapushdb"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	db := lapushdb.Open()

	orders, err := db.CreateRelation("Orders", "customer", "product")
	check(err)
	madeBy, err := db.CreateRelation("MadeBy", "product", "vendor")
	check(err)
	flagged, err := db.CreateRelation("Flagged", "vendor")
	check(err)
	recalled, err := db.CreateRelation("Recalled", "product")
	check(err)

	products := []string{"p1", "p2", "p3", "p4", "p5", "p6"}
	vendors := []string{"acme", "globex", "initech"}
	for c := 0; c < 40; c++ {
		customer := fmt.Sprintf("cust%02d", c)
		for i := 0; i < 1+rng.Intn(3); i++ {
			check(orders.Insert(0.2+0.8*rng.Float64(), customer, products[rng.Intn(len(products))]))
		}
	}
	for _, p := range products {
		check(madeBy.Insert(0.5+0.5*rng.Float64(), p, vendors[rng.Intn(len(vendors))]))
	}
	for _, v := range vendors {
		check(flagged.Insert(rng.Float64()*0.8, v))
	}
	for _, p := range products[:3] {
		check(recalled.Insert(rng.Float64()*0.6, p))
	}

	// Which customers most likely bought from a flagged vendor?
	q := "q(customer) :- Orders(customer, product), MadeBy(product, vendor), Flagged(vendor)"

	fmt.Println("exact top-5 via dissociation-bounded early termination:")
	top, err := db.RankTopK(q, 5, nil)
	check(err)
	for i, a := range top {
		fmt.Printf("  %d. %-8s %.6f (exact)\n", i+1, a.Values[0], a.Score)
	}

	// Union: bought from a flagged vendor OR bought a recalled product.
	union := []string{
		q,
		"q(customer) :- Orders(customer, product), Recalled(product)",
	}
	fmt.Println("\nunion of two risk queries (dissociation = FKG-sound upper bounds):")
	bounds, err := db.RankUnion(union, nil)
	check(err)
	exact, err := db.RankUnion(union, &lapushdb.Options{Method: lapushdb.Exact})
	check(err)
	exactOf := map[string]float64{}
	for _, a := range exact {
		exactOf[a.Values[0]] = a.Score
	}
	for i := 0; i < 5 && i < len(bounds); i++ {
		a := bounds[i]
		fmt.Printf("  %d. %-8s bound %.6f  exact %.6f\n", i+1, a.Values[0], a.Score, exactOf[a.Values[0]])
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
