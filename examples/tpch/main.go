// TPC-H ranking: a miniature of the paper's Setup 1. We build a
// TPC-H-shaped database (Supplier ⋈ Partsupp ⋈ Part with random tuple
// probabilities), then rank the 25 nations by the probability that one
// of their suppliers, below a supplier-key threshold, supplies a part
// whose name matches a pattern — comparing dissociation, exact
// inference, Monte Carlo, and the non-probabilistic lineage-size
// heuristic.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"lapushdb"
)

// A small color vocabulary, TPC-H style: part names are five words.
var colors = strings.Fields(`almond antique aquamarine azure beige bisque
	black blanched blue blush brown burlywood chartreuse chocolate coral
	cornflower cream cyan dark deep dim dodger drab firebrick floral forest
	frosted gainsboro ghost goldenrod green grey honeydew hot indian ivory
	khaki lavender lawn lemon light lime linen magenta maroon medium
	metallic midnight mint misty navajo navy olive orange orchid pale
	papaya peach peru pink plum powder puff purple red rose rosy royal
	saddle salmon sandy seashell sienna sky slate smoke snow spring steel
	tan thistle tomato turquoise violet wheat white yellow`)

const (
	nations   = 25
	suppliers = 200
	parts     = 800
)

func main() {
	rng := rand.New(rand.NewSource(42))
	db := lapushdb.Open()

	sup, err := db.CreateRelation("Supplier", "suppkey", "nationkey")
	check(err)
	ps, err := db.CreateRelation("Partsupp", "suppkey", "partkey")
	check(err)
	part, err := db.CreateRelation("Part", "partkey", "name")
	check(err)

	for s := 1; s <= suppliers; s++ {
		check(sup.Insert(rng.Float64()*0.5, s, rng.Intn(nations)))
	}
	for u := 1; u <= parts; u++ {
		name := fmt.Sprintf("%s %s %s %s %s",
			colors[rng.Intn(len(colors))], colors[rng.Intn(len(colors))],
			colors[rng.Intn(len(colors))], colors[rng.Intn(len(colors))],
			colors[rng.Intn(len(colors))])
		check(part.Insert(rng.Float64()*0.5, u, name))
		for i := 0; i < 4; i++ {
			check(ps.Insert(rng.Float64()*0.5, 1+rng.Intn(suppliers), u))
		}
	}

	// The paper's parameterized query with $1 = 150 and $2 = '%red%'.
	q := `Q(nationkey) :- Supplier(s, nationkey), Partsupp(s, u), Part(u, n), s <= 150, n like '%red%'`

	fmt.Println("ranking 25 nations:", q)
	fmt.Println()
	type method struct {
		name string
		opts *lapushdb.Options
	}
	for _, m := range []method{
		{"dissociation (ρ, upper bounds)", nil},
		{"exact (ground truth)", &lapushdb.Options{Method: lapushdb.Exact}},
		{"Monte Carlo, 1000 samples", &lapushdb.Options{Method: lapushdb.MonteCarlo, MCSamples: 1000}},
		{"lineage size (non-probabilistic)", &lapushdb.Options{Method: lapushdb.LineageSize}},
	} {
		start := time.Now()
		answers, err := db.Rank(q, m.opts)
		check(err)
		fmt.Printf("%-34s (%6.1f ms) top 5:", m.name, float64(time.Since(start).Microseconds())/1000)
		for i := 0; i < 5 && i < len(answers); i++ {
			fmt.Printf("  %s:%.4f", answers[i].Values[0], answers[i].Score)
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
