// Knowledge base: the motivation from the paper's introduction. Large
// automatically-constructed knowledge bases (Yago, NELL, Knowledge
// Vault) hold millions of uncertain facts; querying them is probabilistic
// inference. This example stores uncertain extraction facts, keeps the
// curated type hierarchy deterministic, and shows how schema knowledge
// (deterministic relations, keys) turns a #P-hard query into an exact
// PTIME one.
package main

import (
	"fmt"
	"log"

	"lapushdb"
)

func main() {
	db := lapushdb.Open()

	// Extracted (uncertain) facts: confidence scores from the extractor.
	born, err := db.CreateRelation("BornIn", "person", "city")
	check(err)
	works, err := db.CreateRelation("WorksFor", "person", "org")
	check(err)
	// Curated (certain) facts: city locations from a trusted gazetteer.
	located, err := db.CreateDeterministicRelation("LocatedIn", "city", "country")
	check(err)

	check(born.Insert(0.9, "alice", "paris"))
	check(born.Insert(0.6, "alice", "lyon")) // conflicting extraction
	check(born.Insert(0.8, "bob", "berlin"))
	check(born.Insert(0.7, "carol", "paris"))
	check(works.Insert(0.95, "alice", "acme"))
	check(works.Insert(0.4, "bob", "acme"))
	check(works.Insert(0.85, "carol", "globex"))
	check(located.Insert(1, "paris", "france"))
	check(located.Insert(1, "lyon", "france"))
	check(located.Insert(1, "berlin", "germany"))

	// Which organizations employ someone born in France?
	// Shape: q(org) :- WorksFor(p, org), BornIn(p, c), LocatedIn(c, 'france').
	q := "q(org) :- WorksFor(p, org), BornIn(p, c), LocatedIn(c, country), country = 'france'"

	ex, err := db.Explain(q)
	check(err)
	fmt.Printf("query: %s\n", q)
	fmt.Printf("safe with schema knowledge: %v — LocatedIn is deterministic,\n", ex.Safe)
	fmt.Printf("so the engine needs %d plan(s) and the scores are exact probabilities.\n\n", len(ex.Plans))

	answers, err := db.Rank(q, nil)
	check(err)
	exact, err := db.Rank(q, &lapushdb.Options{Method: lapushdb.Exact})
	check(err)
	fmt.Println("org        dissociation  exact")
	for i, a := range answers {
		fmt.Printf("%-10s %.6f      %.6f\n", a.Values[0], a.Score, exact[i].Score)
	}

	// Now the same query WITHOUT schema knowledge: the engine must treat
	// LocatedIn as probabilistic, the query becomes #P-hard, and two
	// plans are needed — the scores are upper bounds instead of exact.
	fmt.Println()
	ex2, err := db.Explain("q(org) :- WorksFor(p, org), BornIn(p, c), LocatedIn(c, country)",
		&lapushdb.Options{IgnoreSchema: true})
	check(err)
	bounds, err := db.Rank("q(org) :- WorksFor(p, org), BornIn(p, c), LocatedIn(c, country)",
		&lapushdb.Options{IgnoreSchema: true})
	check(err)
	fmt.Printf("ignoring schema knowledge the same join uses %d plans (safe=%v)\n", len(ex2.Plans), ex2.Safe)
	for _, a := range bounds {
		fmt.Printf("  %-10s <= %.6f\n", a.Values[0], a.Score)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
