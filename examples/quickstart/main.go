// Quickstart: a tiny uncertain movie database, one #P-hard query, and
// the three ways LaPushDB can answer it — dissociation (fast upper
// bounds, the paper's contribution), exact inference, and Monte Carlo.
package main

import (
	"fmt"
	"log"

	"lapushdb"
)

func main() {
	db := lapushdb.Open()

	// Tuple-independent probabilistic relations: every tuple carries the
	// probability that it is true.
	likes, err := db.CreateRelation("Likes", "user", "movie")
	check(err)
	stars, err := db.CreateRelation("Stars", "movie", "actor")
	check(err)
	fan, err := db.CreateRelation("Fan", "actor")
	check(err)

	check(likes.Insert(0.9, "ann", "heat"))
	check(likes.Insert(0.5, "bob", "heat"))
	check(likes.Insert(0.4, "bob", "ronin"))
	check(likes.Insert(0.8, "cyd", "ronin"))
	check(stars.Insert(0.8, "heat", "deniro"))
	check(stars.Insert(0.7, "ronin", "deniro"))
	check(stars.Insert(0.3, "heat", "pacino"))
	check(fan.Insert(0.6, "deniro"))
	check(fan.Insert(0.9, "pacino"))

	// Which users like a movie starring an actor with a fan page?
	// This is the chain-shaped query q(z) :- R(z,x), S(x,y), T(y) — the
	// canonical #P-hard query of the probabilistic-database literature.
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"

	ex, err := db.Explain(q)
	check(err)
	fmt.Printf("query: %s\nsafe:  %v (so exact inference is #P-hard)\n\n", q, ex.Safe)
	for i, p := range ex.Plans {
		fmt.Printf("minimal plan %d: %s\n  dissociates:  %s\n", i+1, p, ex.Dissociations[i])
	}

	fmt.Println("\nranking by dissociation (guaranteed upper bounds, minimum over both plans):")
	diss, err := db.Rank(q, nil)
	check(err)
	print(diss)

	fmt.Println("\nground truth (exact weighted model counting on the lineage):")
	exact, err := db.Rank(q, &lapushdb.Options{Method: lapushdb.Exact})
	check(err)
	print(exact)

	fmt.Println("\nMonte Carlo with 10000 samples:")
	mcAnswers, err := db.Rank(q, &lapushdb.Options{Method: lapushdb.MonteCarlo, MCSamples: 10000})
	check(err)
	print(mcAnswers)
}

func print(answers []lapushdb.Answer) {
	for i, a := range answers {
		fmt.Printf("  %d. %-6s %.6f\n", i+1, a.Values[0], a.Score)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
