// Safe plans and the dissociation lattice: a tour of the paper's worked
// examples. Shows the dichotomy (hierarchical queries are safe, others
// #P-hard), the minimal plans of Example 17 with their exact paper
// probabilities, and how keys (functional dependencies) restore safety
// (Example 23 / Section 3.3.2).
package main

import (
	"fmt"
	"log"

	"lapushdb"
)

func main() {
	// ---- Example 17: q :- R(x), S(x), T(x,y), U(y) --------------------
	db := lapushdb.Open()
	r, err := db.CreateRelation("R", "x")
	check(err)
	s, err := db.CreateRelation("S", "x")
	check(err)
	tt, err := db.CreateRelation("T", "x", "y")
	check(err)
	u, err := db.CreateRelation("U", "y")
	check(err)
	for _, v := range []int{1, 2} {
		check(r.Insert(0.5, v))
		check(s.Insert(0.5, v))
		check(u.Insert(0.5, v))
	}
	for _, row := range [][2]int{{1, 1}, {1, 2}, {2, 2}} {
		check(tt.Insert(0.5, row[0], row[1]))
	}

	q17 := "q() :- R(x), S(x), T(x, y), U(y)"
	ex, err := db.Explain(q17)
	check(err)
	fmt.Println("Example 17:", q17)
	fmt.Printf("  safe: %v; the 8-element dissociation lattice has 2 minimal safe dissociations:\n", ex.Safe)
	for i, p := range ex.Plans {
		fmt.Printf("  plan %d: %-55s ∆ = %s\n", i+1, p, ex.Dissociations[i])
	}
	diss, err := db.Rank(q17, nil)
	check(err)
	exact, err := db.Rank(q17, &lapushdb.Options{Method: lapushdb.Exact})
	check(err)
	fmt.Printf("  paper: P(q) = 83/512 ≈ 0.1621, ρ(q) = 169/1024 ≈ 0.1650\n")
	fmt.Printf("  ours:  P(q) = %.4f, ρ(q) = %.4f\n\n", exact[0].Score, diss[0].Score)

	// ---- Dichotomy: a hierarchical query is exact with one plan -------
	dbh := lapushdb.Open()
	r2, err := dbh.CreateRelation("R", "x")
	check(err)
	s2, err := dbh.CreateRelation("S", "x", "y")
	check(err)
	check(r2.Insert(0.5, 1))
	check(s2.Insert(0.4, 1, 4))
	check(s2.Insert(0.7, 1, 5))
	exh, err := dbh.Explain("q() :- R(x), S(x, y)")
	check(err)
	ph, err := dbh.Rank("q() :- R(x), S(x, y)", nil)
	check(err)
	fmt.Println("Dichotomy: q() :- R(x), S(x, y) is hierarchical")
	fmt.Printf("  safe: %v, single plan: %s\n", exh.Safe, exh.Plans[0])
	fmt.Printf("  P(q) = p(1-(1-q)(1-r)) = 0.5·(1-0.6·0.3) = %.4f (exact, Example 7)\n\n", ph[0].Score)

	// ---- Example 23 / FDs: keys restore safety ------------------------
	dbk := lapushdb.Open()
	r3, err := dbk.CreateRelation("R", "x")
	check(err)
	s3, err := dbk.CreateRelation("S", "x", "y")
	check(err)
	t3, err := dbk.CreateRelation("T", "y")
	check(err)
	check(r3.Insert(0.5, 1))
	check(s3.Insert(0.6, 1, 7))
	check(t3.Insert(0.8, 7))

	qk := "q() :- R(x), S(x, y), T(y)"
	before, err := dbk.Explain(qk)
	check(err)
	fmt.Println("Example 23:", qk)
	fmt.Printf("  without keys: safe=%v, %d plans (the classic #P-hard query)\n", before.Safe, len(before.Plans))

	s3.SetKey("x") // functional dependency x → y
	after, err := dbk.Explain(qk)
	check(err)
	fmt.Printf("  with key S(x): safe=%v, %d plan — the FD chase dissociates R on y\n", after.Safe, len(after.Plans))
	fmt.Printf("  plan: %-50s ∆ = %s\n", after.Plans[0], after.Dissociations[0])
	pk, err := dbk.Rank(qk, nil)
	check(err)
	pe, err := dbk.Rank(qk, &lapushdb.Options{Method: lapushdb.Exact})
	check(err)
	fmt.Printf("  score = %.6f, exact = %.6f (equal: the plan is exact under the FD)\n", pk[0].Score, pe[0].Score)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
