package lapushdb

import (
	"context"

	"lapushdb/internal/engine"
)

// Batched multi-query evaluation. A workload rarely asks one question:
// a ranking service answers many related queries against the same data,
// and the companion DBMS paper's view-reuse observation (Opt2) pays off
// across a whole batch, not just within one query's minimal plans.
// RankBatch pins one database state and evaluates N queries against it,
// sharing canonicalized subplan results across the queries: a subplan
// is reused exactly when evaluating it standalone would produce
// bit-identical results (same plan key, same semi-join-reduced scan
// inputs), so every query's answers are byte-equal to a one-at-a-time
// Rank call — only cheaper. One intermediate-row budget and one
// context deadline span the whole batch.

// BatchResult is one query's outcome within a batch evaluation: its
// ranked answers, or the error that failed it. Queries fail
// independently — a parse error, budget exhaustion, or cancellation of
// one query leaves the others' results intact.
type BatchResult struct {
	Answers []Answer
	Err     error
}

// BatchStats reports the cross-query sharing counters of one batch.
type BatchStats struct {
	// SharedSubplanHits counts subplan evaluations served from another
	// query's memoized work.
	SharedSubplanHits int64
	// SharedSubplanMisses counts subplan results computed and inserted
	// into the shared memo.
	SharedSubplanMisses int64
}

// Batch shares evaluation work across several queries answered against
// one database state: canonicalized subplan results (the cross-query
// extension of Optimization 2) and one intermediate-row budget. The
// database must not be mutated while the batch is in use — pin an
// immutable snapshot/version, as the server does. A Batch is safe for
// concurrent use, though scores are bit-identical either way.
type Batch struct {
	d    *DB
	opts Options
	memo *engine.BatchMemo
}

// NewBatch prepares a batch evaluation over the database with the given
// options (nil for defaults). The options apply to every query of the
// batch: Method, Workers, optimization toggles, and
// MaxIntermediateRows, which here bounds the rows materialized by the
// whole batch rather than one query (shared subplans are charged once,
// when first computed). Subplan sharing applies to the Dissociation
// method and is disabled by DisableOpt2; other methods evaluate
// per-query but still share the batch's deadline.
func (d *DB) NewBatch(opts *Options) *Batch {
	if opts == nil {
		opts = &Options{}
	}
	o := *opts
	// The scope string states the sharing invariant: one database
	// state, one set of result-affecting options. Options that change
	// subplan bits (join ordering) or plan shape are folded in
	// defensively even though a memo never outlives its Batch.
	scope := d.SchemaFingerprint()
	if o.CostBasedJoins {
		scope += "|cb"
	}
	if o.IgnoreSchema {
		scope += "|ns"
	}
	o.memo = engine.NewBatchMemo(scope, o.MaxIntermediateRows, !o.DisableOpt2)
	return &Batch{d: d, opts: o, memo: o.memo}
}

// Rank evaluates one query as part of the batch, honoring ctx (which
// should be the same across the batch — one shared deadline). Answers
// are bit-identical to a standalone Rank with the batch's options.
func (b *Batch) Rank(ctx context.Context, query string) ([]Answer, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	opts := b.opts
	q, err := parseChecked(b.d, query)
	if err != nil {
		return nil, err
	}
	return b.d.rank(ctx, q, nil, &opts)
}

// RankPrepared evaluates a prepared statement as part of the batch —
// the server's path, where statements come from a plan cache.
func (b *Batch) RankPrepared(ctx context.Context, p *Prepared) ([]Answer, error) {
	opts := b.opts
	return b.d.RankPrepared(ctx, p, &opts)
}

// Stats returns the batch's cross-query sharing counters so far.
func (b *Batch) Stats() BatchStats {
	return BatchStats{
		SharedSubplanHits:   b.memo.SharedHits(),
		SharedSubplanMisses: b.memo.SharedMisses(),
	}
}

// RankBatch evaluates several queries against the same database state,
// sharing common subplan results across them, and returns one
// BatchResult per query in input order. Scores are bit-identical to
// calling Rank once per query with the same options; see NewBatch for
// how the options (including the batch-wide MaxIntermediateRows
// budget) apply.
func (d *DB) RankBatch(queries []string, opts *Options) []BatchResult {
	return d.RankBatchContext(context.Background(), queries, opts)
}

// RankBatchContext is RankBatch honoring ctx: one deadline spans the
// whole batch, and queries not yet evaluated when it expires report the
// context's error in their BatchResult. When opts.Stats is set it
// receives the batch totals, including the shared-subplan counters.
func (d *DB) RankBatchContext(ctx context.Context, queries []string, opts *Options) []BatchResult {
	b := d.NewBatch(opts)
	out := make([]BatchResult, len(queries))
	for i, q := range queries {
		out[i].Answers, out[i].Err = b.Rank(ctx, q)
	}
	if opts != nil && opts.Stats != nil {
		opts.Stats.SharedSubplanHits = b.memo.SharedHits()
		opts.Stats.SharedSubplanMisses = b.memo.SharedMisses()
	}
	return out
}
