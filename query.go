package lapushdb

import (
	"fmt"

	"lapushdb/internal/cq"
)

// QueryBuilder constructs a conjunctive query programmatically — the
// type-safe alternative to writing the datalog string. Terms are
// strings: names registered with Var become variables, everything else
// is a constant (ints are accepted directly).
//
//	q := lapushdb.NewQuery("q").
//		Head("user").
//		Atom("Likes", "user", "movie").
//		Atom("Stars", "movie", "actor").
//		Atom("Fan", "actor").
//		Where("actor", "!=", "pacino")
//	answers, err := db.RankQuery(q, nil)
//
// Every identifier used in Head, in Where, or as an atom argument is
// implicitly a variable; use Const to force a string constant that
// collides with a variable name.
type QueryBuilder struct {
	name   string
	head   []string
	atoms  []builderAtom
	preds  []builderPred
	consts map[string]bool
	err    error
}

type builderAtom struct {
	rel  string
	args []any
}

type builderPred struct {
	v, op string
	c     any
}

// NewQuery starts a query with the given head-predicate name.
func NewQuery(name string) *QueryBuilder {
	return &QueryBuilder{name: name, consts: map[string]bool{}}
}

// Head declares the free (output) variables.
func (b *QueryBuilder) Head(vars ...string) *QueryBuilder {
	b.head = append(b.head, vars...)
	return b
}

// Atom adds a relational atom. Arguments may be strings (variables, or
// constants marked with Const) or ints (constants).
func (b *QueryBuilder) Atom(rel string, args ...any) *QueryBuilder {
	b.atoms = append(b.atoms, builderAtom{rel: rel, args: args})
	return b
}

// Where adds a comparison predicate: op is one of <=, <, >=, >, =, !=,
// like. The constant may be a string or an int.
func (b *QueryBuilder) Where(variable, op string, constant any) *QueryBuilder {
	b.preds = append(b.preds, builderPred{v: variable, op: op, c: constant})
	return b
}

// Const marks a string as a constant for use as an atom argument, even
// if it looks like a variable name.
type Const string

// build assembles the internal query.
func (b *QueryBuilder) build() (*cq.Query, error) {
	if b.err != nil {
		return nil, b.err
	}
	q := &cq.Query{Name: b.name}
	for _, h := range b.head {
		q.Head = append(q.Head, cq.Var(h))
	}
	for _, a := range b.atoms {
		atom := cq.Atom{Rel: a.rel}
		for _, arg := range a.args {
			switch t := arg.(type) {
			case Const:
				atom.Args = append(atom.Args, cq.C(string(t)))
			case string:
				atom.Args = append(atom.Args, cq.V(t))
			case int:
				atom.Args = append(atom.Args, cq.C(fmt.Sprint(t)))
			case int64:
				atom.Args = append(atom.Args, cq.C(fmt.Sprint(t)))
			default:
				return nil, fmt.Errorf("lapushdb: unsupported atom argument type %T", arg)
			}
		}
		q.Atoms = append(q.Atoms, atom)
	}
	for _, p := range b.preds {
		var op cq.CompareOp
		switch p.op {
		case "<=":
			op = cq.OpLE
		case "<":
			op = cq.OpLT
		case ">=":
			op = cq.OpGE
		case ">":
			op = cq.OpGT
		case "=", "==":
			op = cq.OpEQ
		case "!=", "<>":
			op = cq.OpNE
		case "like", "LIKE":
			op = cq.OpLike
		default:
			return nil, fmt.Errorf("lapushdb: unknown comparison operator %q", p.op)
		}
		var c string
		switch t := p.c.(type) {
		case string:
			c = t
		case Const:
			c = string(t)
		case int:
			c = fmt.Sprint(t)
		case int64:
			c = fmt.Sprint(t)
		default:
			return nil, fmt.Errorf("lapushdb: unsupported predicate constant type %T", p.c)
		}
		q.Preds = append(q.Preds, cq.Predicate{Var: cq.Var(p.v), Op: op, Const: c})
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// String renders the built query in datalog notation (empty on build
// errors).
func (b *QueryBuilder) String() string {
	q, err := b.build()
	if err != nil {
		return ""
	}
	return q.String()
}

// RankQuery is Rank for a programmatically built query.
func (d *DB) RankQuery(b *QueryBuilder, opts *Options) ([]Answer, error) {
	q, err := b.build()
	if err != nil {
		return nil, err
	}
	return d.Rank(q.String(), opts)
}

// ExplainQuery is Explain for a programmatically built query.
func (d *DB) ExplainQuery(b *QueryBuilder, opts ...*Options) (*Explanation, error) {
	q, err := b.build()
	if err != nil {
		return nil, err
	}
	return d.Explain(q.String(), opts...)
}
