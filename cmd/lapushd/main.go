// Command lapushd serves a probabilistic database over HTTP/JSON. It
// loads the same CSV files and snapshots as cmd/lapush, then answers
// concurrent queries with a bounded plan cache, per-request deadlines,
// and Prometheus-format metrics. With -data it runs over a durable
// versioned store: mutations arrive through POST /v1/ingest, are logged
// to a write-ahead log before they are acknowledged, and periodically
// fold into snapshot checkpoints; on restart the store recovers the
// checkpoint plus WAL (truncating a torn tail) and the -rel/-load seed
// is ignored in favor of the recovered state.
//
// Usage:
//
//	lapushd -rel Likes=likes.csv -rel Stars=stars.csv -addr :8080
//	lapushd -load db.lpd -workers 16 -cache 512
//	lapushd -data /var/lib/lapushd -rel Likes=likes.csv -wal-fsync always
//	lapushd -replica-of http://primary:8080 -data /var/lib/lapushd-replica -addr :8081
//
// Endpoints:
//
//	POST /v1/query      evaluate a conjunctive query and rank its answers
//	POST /v1/rank_batch evaluate several queries against one pinned version
//	POST /v1/explain    show minimal plans and dissociations
//	POST /v1/ingest    apply a mutation batch, publish a new version
//	GET  /v1/relations list the live version's relations
//	GET  /v1/store     store version, WAL bytes, checkpoint progress
//	GET  /v1/wal       stream the retained mutation log to tailing replicas
//	GET  /v1/checkpoint ship a fingerprinted snapshot for replica bootstrap
//	POST /v1/promote   promote this replica to primary on a new epoch (admin)
//	GET  /healthz      liveness probe (role, epoch, applied seq/lag on replicas)
//	GET  /metrics      Prometheus text metrics
//
// With -replica-of the process is a read-only replica: it bootstraps
// from the primary's checkpoint, tails its WAL, and serves bit-identical
// reads; with -data it persists what it applies and a restart resumes
// from local state. POST /v1/promote (optionally {"min_seq": N}) turns
// it into the primary of a new write lineage, stamped with a durably
// bumped promotion epoch.
//
// With -peers the process handshakes with the listed lapushd nodes at
// startup and keeps polling them: if any peer reports a higher
// promotion epoch, this node fences itself — it serves reads but
// refuses writes with 503 and points clients at the promoted primary —
// instead of forking the WAL. Give a primary its replicas as -peers so
// a crashed-and-restarted primary cannot resurrect a stale lineage.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight queries before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lapushdb"
	"lapushdb/internal/loader"
	"lapushdb/internal/replica"
	"lapushdb/internal/server"
	"lapushdb/internal/store"
)

type relFlags []string

func (r *relFlags) String() string     { return strings.Join(*r, ",") }
func (r *relFlags) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var rels, dets, keys relFlags
	flag.Var(&rels, "rel", "relation as Name=file.csv (repeatable)")
	flag.Var(&dets, "det", "declare a relation deterministic (repeatable)")
	flag.Var(&keys, "key", "declare a key as Rel=col1,col2 (repeatable)")
	loadFile := flag.String("load", "", "restore a database snapshot instead of loading CSVs")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 8, "max queries evaluating concurrently")
	parallelism := flag.Int("parallelism", 1, "default intra-query worker count (morsel parallelism; requests may override via the parallelism field)")
	cacheSize := flag.Int("cache", 256, "plan cache capacity (entries)")
	resultCacheSize := flag.Int("result-cache", 512, "result cache capacity (entries); repeated identical requests at an unchanged store version are served without re-evaluation")
	maxBatch := flag.Int("max-batch", 64, "max queries per /v1/rank_batch request")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	maxRows := flag.Int("max-rows", 0, "cap on intermediate rows per query (exceeding fails with 422; 0 disables; ceiling for the max_rows request field)")
	queueWait := flag.Duration("queue-wait", 0, "estimated worker-queue wait; saturated-pool requests with less remaining deadline are shed with 429 (0 disables)")
	dataDir := flag.String("data", "", "durable store directory (WAL + checkpoints); empty serves in-memory only")
	walFsync := flag.String("wal-fsync", "always", "WAL fsync policy: always (no acknowledged batch is ever lost) or never")
	checkpointEvery := flag.Int("checkpoint-every", 256, "checkpoint after this many mutation batches (<0 disables automatic checkpoints)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the primary lapushd at this base URL (e.g. http://primary:8080); ingestion is refused with the primary's address, all state arrives by tailing the primary's WAL; POST /v1/promote turns it into the primary")
	var peers relFlags
	flag.Var(&peers, "peers", "base URL of a peer lapushd to handshake promotion epochs with (repeatable); a peer on a higher epoch fences this node into read-only mode")
	flag.Parse()

	if len(rels) == 0 && *loadFile == "" && *dataDir == "" && *replicaOf == "" {
		fmt.Fprintln(os.Stderr, "lapushd: need at least one -rel, a -load snapshot, a -data store directory, or -replica-of")
		flag.Usage()
		os.Exit(2)
	}
	if *replicaOf != "" && (len(rels) > 0 || *loadFile != "") {
		// A replica's whole state comes from the primary; a local seed
		// would only fork it into an immediate re-bootstrap.
		fmt.Fprintln(os.Stderr, "lapushd: -replica-of is incompatible with -rel and -load (the replica bootstraps from the primary)")
		os.Exit(2)
	}
	primaryURL := strings.TrimSuffix(*replicaOf, "/")

	var db *lapushdb.DB
	var err error
	if len(rels) > 0 || *loadFile != "" {
		db, err = loader.Build(*loadFile, rels, dets, keys)
		if err != nil {
			fail("%v", err)
		}
	}

	// The CSV/snapshot input seeds the store on first boot only; once
	// the data directory holds a manifest, recovered state wins.
	st, err := store.Open(db, store.Options{
		Dir:             *dataDir,
		Fsync:           store.FsyncPolicy(*walFsync),
		CheckpointEvery: *checkpointEvery,
	})
	if err != nil {
		fail("%v", err)
	}
	defer st.Close()

	cfg := server.Config{
		Workers:         *workers,
		Parallelism:     *parallelism,
		CacheSize:       *cacheSize,
		ResultCacheSize: *resultCacheSize,
		MaxBatchQueries: *maxBatch,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxBodyBytes:    *maxBody,
		MaxRows:         *maxRows,
		QueueWait:       *queueWait,
	}
	for _, p := range peers {
		cfg.Peers = append(cfg.Peers, strings.TrimSuffix(p, "/"))
	}
	if primaryURL != "" {
		tailer, err := replica.Start(replica.Options{Primary: primaryURL, Store: st})
		if err != nil {
			fail("%v", err)
		}
		defer tailer.Close()
		cfg.ReplicaOf = primaryURL
		cfg.ReplicaStatus = tailer.Status
		cfg.StopTailer = tailer.Close
	}
	srv := server.NewWithStore(st, cfg)
	defer srv.Close()
	if len(cfg.Peers) > 0 {
		// One synchronous handshake round before serving: a restarted old
		// primary that can reach the promoted replica fences itself before
		// it answers a single write on the stale lineage.
		hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		if srv.CheckPeers(hctx) {
			fmt.Fprintln(os.Stderr, "lapushd: a peer reported a newer promotion epoch; starting fenced (read-only)")
		}
		hcancel()
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	v := st.Current()
	tuples := 0
	infos := v.DB.RelationInfos()
	for _, ri := range infos {
		tuples += ri.Tuples
	}
	durable := "in-memory"
	if *dataDir != "" {
		durable = fmt.Sprintf("durable in %s (wal-fsync=%s)", *dataDir, *walFsync)
	}
	role := "primary"
	if primaryURL != "" {
		role = fmt.Sprintf("read replica of %s", primaryURL)
	}
	fmt.Fprintf(os.Stderr, "lapushd: serving %d relations (%d tuples) at version %d (epoch %d), %s, %s, on %s\n",
		len(infos), tuples, v.Seq, v.Epoch, durable, role, *addr)

	select {
	case err := <-errCh:
		fail("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "lapushd: shutting down, draining in-flight queries")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail("shutdown: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lapushd: "+format+"\n", args...)
	os.Exit(1)
}
