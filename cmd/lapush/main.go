// Command lapush is the interactive front door to the library: it loads
// probabilistic relations from CSV files and answers a conjunctive query
// with the chosen method.
//
// Usage:
//
//	lapush -rel Likes=likes.csv -rel Stars=stars.csv \
//	       -q "q(user) :- Likes(user, movie), Stars(movie, actor)" \
//	       -method diss -top 10
//
// CSV format: one tuple per line, the LAST column is the probability.
// A header line is required and names the columns (the probability
// column's name is ignored). Pass -det Rel to declare a relation
// deterministic and -key "Rel=col1,col2" to declare keys.
//
// Methods: diss (default), exact, obdd, mc, kl, lineage, sql. Pass
// -explain to print the minimal plans and dissociations instead of
// evaluating.
//
// Databases can be persisted: -save db.lpd writes a snapshot after
// loading the CSVs; -load db.lpd restores one instead of loading CSVs.
// Pass -i for an interactive session: type queries at the prompt, or the
// commands ".explain <query>", ".lineage <query>", ".method <m>",
// ".quit".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lapushdb"
	"lapushdb/internal/loader"
)

type relFlags []string

func (r *relFlags) String() string     { return strings.Join(*r, ",") }
func (r *relFlags) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var rels, dets, keys relFlags
	flag.Var(&rels, "rel", "relation as Name=file.csv (repeatable)")
	flag.Var(&dets, "det", "declare a relation deterministic (repeatable)")
	flag.Var(&keys, "key", "declare a key as Rel=col1,col2 (repeatable)")
	query := flag.String("q", "", "conjunctive query, e.g. \"q(x) :- R(x, y), S(y)\"")
	method := flag.String("method", "diss", "diss | exact | obdd | mc | kl | lineage | sql")
	top := flag.Int("top", 0, "print only the top-k answers (0 = all)")
	samples := flag.Int("samples", 1000, "Monte Carlo samples")
	seed := flag.Int64("seed", 1, "random seed for mc")
	explain := flag.Bool("explain", false, "print plans and dissociations instead of evaluating")
	dot := flag.String("dot", "", "emit Graphviz DOT instead of evaluating: 'plans' or 'lattice'")
	saveFile := flag.String("save", "", "write a database snapshot to this file")
	loadFile := flag.String("load", "", "restore a database snapshot instead of loading CSVs")
	interactive := flag.Bool("i", false, "interactive query session on stdin")
	flag.Parse()

	if *query == "" && !*interactive && *saveFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Validate the method before doing any loading work, so a typo fails
	// fast with the valid set instead of after minutes of CSV ingestion.
	if _, err := lapushdb.MethodFromString(*method); err != nil {
		fail("%v", err)
	}

	db, err := loader.Build(*loadFile, rels, dets, keys)
	if err != nil {
		fail("%v", err)
	}
	if *saveFile != "" {
		if err := loader.SaveSnapshotFile(db, *saveFile); err != nil {
			fail("save snapshot: %v", err)
		}
		fmt.Fprintf(os.Stderr, "saved snapshot to %s\n", *saveFile)
		if *query == "" && !*interactive {
			return
		}
	}

	if *interactive {
		repl(db, *method, *samples, *seed, *top, os.Stdin, os.Stdout)
		return
	}

	if *dot != "" {
		out, err := db.PlanDOT(*query, *dot)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(out)
		return
	}

	if *explain {
		ex, err := db.Explain(*query)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("safe: %v\n", ex.Safe)
		for i, p := range ex.Plans {
			fmt.Printf("plan %d: %s\n   dissociation: %s\n", i+1, p, ex.Dissociations[i])
		}
		fmt.Printf("merged plan (Opt1): %s\n", ex.SinglePlan)
		return
	}

	opts, err := methodOptions(*method, *samples, *seed)
	if err != nil {
		fail("%v", err)
	}
	answers, err := db.Rank(*query, opts)
	if err != nil {
		fail("%v", err)
	}
	printAnswers(answers, *top)
}

func methodOptions(method string, samples int, seed int64) (*lapushdb.Options, error) {
	m, err := lapushdb.MethodFromString(method)
	if err != nil {
		return nil, err
	}
	return &lapushdb.Options{Method: m, MCSamples: samples, Seed: seed}, nil
}

func printAnswers(answers []lapushdb.Answer, top int) {
	printAnswersTo(os.Stdout, answers, top)
}

func printAnswersTo(w io.Writer, answers []lapushdb.Answer, top int) {
	n := len(answers)
	if top > 0 && top < n {
		n = top
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%2d. %-40s %.6f\n", i+1, strings.Join(answers[i].Values, ", "), answers[i].Score)
	}
}

// repl reads queries and dot-commands from in until EOF or .quit.
func repl(db *lapushdb.DB, method string, samples int, seed int64, top int, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(os.Stderr, "lapush interactive — enter a query, or .explain/.lineage/.profile/.method/.quit")
	prompt := func() { fmt.Fprint(os.Stderr, "> ") }
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case strings.HasPrefix(line, ".method"):
			m := strings.TrimSpace(strings.TrimPrefix(line, ".method"))
			if _, err := methodOptions(m, samples, seed); err != nil {
				fmt.Fprintln(out, err)
			} else {
				method = m
				fmt.Fprintln(out, "method:", method)
			}
		case strings.HasPrefix(line, ".explain"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ".explain"))
			ex, err := db.Explain(q)
			if err != nil {
				fmt.Fprintln(out, err)
				break
			}
			fmt.Fprintf(out, "safe: %v\n", ex.Safe)
			for i, p := range ex.Plans {
				fmt.Fprintf(out, "plan %d: %s\n   dissociation: %s\n", i+1, p, ex.Dissociations[i])
			}
			fmt.Fprintf(out, "merged plan (Opt1): %s\n", ex.SinglePlan)
		case strings.HasPrefix(line, ".influence"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ".influence"))
			infos, err := db.Influence(q, 3)
			if err != nil {
				fmt.Fprintln(out, err)
				break
			}
			for _, ai := range infos {
				fmt.Fprintf(out, "%s  P=%.6f\n", strings.Join(ai.Values, ", "), ai.Probability)
				for _, ti := range ai.Tuples {
					fmt.Fprintf(out, "    %-40s ∂P/∂p = %.6f\n", ti.Tuple, ti.Influence)
				}
			}
		case strings.HasPrefix(line, ".profile"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ".profile"))
			prof, err := db.Profile(q)
			if err != nil {
				fmt.Fprintln(out, err)
				break
			}
			fmt.Fprint(out, prof)
		case strings.HasPrefix(line, ".lineage"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ".lineage"))
			infos, err := db.Lineage(q)
			if err != nil {
				fmt.Fprintln(out, err)
				break
			}
			for _, info := range infos {
				fmt.Fprintf(out, "%s  (|lin| = %d, read-once: %v)\n  %s\n",
					strings.Join(info.Values, ", "), info.Size, info.ReadOnce, info.Formula)
				if info.ReadOnce {
					fmt.Fprintf(out, "  = %s\n", info.Factorization)
				}
			}
		case strings.HasPrefix(line, "."):
			fmt.Fprintln(out, "commands: .explain <q>, .lineage <q>, .profile <q>, .influence <q>, .method <m>, .quit")
		default:
			opts, err := methodOptions(method, samples, seed)
			if err != nil {
				fmt.Fprintln(out, err)
				break
			}
			answers, err := db.Rank(line, opts)
			if err != nil {
				fmt.Fprintln(out, err)
				break
			}
			printAnswersTo(out, answers, top)
		}
		prompt()
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
