package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lapushdb"
	"lapushdb/internal/loader"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadCSV(t *testing.T) {
	dir := t.TempDir()
	file := writeFile(t, dir, "likes.csv", "user,movie,p\nann,heat,0.9\nbob,heat,0.5\n")
	db := lapushdb.Open()
	if err := loader.LoadCSVFile(db, "Likes", file, false); err != nil {
		t.Fatal(err)
	}
	if got := db.Relation("Likes").Len(); got != 2 {
		t.Errorf("tuples = %d, want 2", got)
	}
	answers, err := db.Rank("q(user) :- Likes(user, movie)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 || answers[0].Values[0] != "ann" {
		t.Errorf("answers = %+v", answers)
	}
}

func TestLoadCSVDeterministic(t *testing.T) {
	dir := t.TempDir()
	file := writeFile(t, dir, "d.csv", "x,p\n1,1\n2,1\n")
	db := lapushdb.Open()
	if err := loader.LoadCSVFile(db, "D", file, true); err != nil {
		t.Fatal(err)
	}
	ex, err := db.Explain("q(x) :- D(x)")
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Safe {
		t.Error("single deterministic atom should be safe")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	dir := t.TempDir()
	db := lapushdb.Open()
	cases := map[string]string{
		"missing.csv":  "", // not written: open fails
		"noheader.csv": "",
		"badprob.csv":  "x,p\n1,notanumber\n",
		"shortrow.csv": "x,y,p\n1,0.5\n",
		"badrange.csv": "x,p\n1,2.5\n",
	}
	for name, content := range cases {
		file := filepath.Join(dir, name)
		if name != "missing.csv" {
			writeFile(t, dir, name, content)
		}
		if err := loader.LoadCSVFile(db, "R_"+name[:3]+name[4:7], file, false); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMethodOptions(t *testing.T) {
	for _, m := range []string{"diss", "exact", "mc", "lineage", "sql"} {
		if _, err := methodOptions(m, 100, 1); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
	if _, err := methodOptions("bogus", 100, 1); err == nil {
		t.Error("bogus method should fail")
	}
}

func TestREPL(t *testing.T) {
	db := lapushdb.Open()
	r, _ := db.CreateRelation("R", "x", "y")
	_ = r.Insert(0.5, 1, 2)
	_ = r.Insert(0.8, 3, 4)
	in := strings.NewReader(strings.Join([]string{
		"q(x) :- R(x, y)",
		".method exact",
		"q(x) :- R(x, y)",
		".method nonsense",
		".explain q(x) :- R(x, y)",
		".lineage q(x) :- R(x, y)",
		".help",
		"broken query",
		".quit",
	}, "\n"))
	var out strings.Builder
	repl(db, "diss", 100, 1, 0, in, &out)
	got := out.String()
	for _, want := range []string{
		"0.800000",           // ranked answer
		"method: exact",      // method switch
		"unknown method",     // bad method
		"safe: true",         // explain
		"|lin| = 1",          // lineage
		"commands: .explain", // help
		"cq: parse",          // parse error surfaced
	} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q:\n%s", want, got)
		}
	}
}

func TestPrintAnswersTop(t *testing.T) {
	answers := []lapushdb.Answer{
		{Values: []string{"a"}, Score: 0.9},
		{Values: []string{"b"}, Score: 0.8},
		{Values: []string{"c"}, Score: 0.7},
	}
	var out strings.Builder
	printAnswersTo(&out, answers, 2)
	if strings.Count(out.String(), "\n") != 2 {
		t.Errorf("top 2 should print 2 lines:\n%s", out.String())
	}
}

func TestREPLProfile(t *testing.T) {
	db := lapushdb.Open()
	r, _ := db.CreateRelation("R", "x", "y")
	_ = r.Insert(0.5, 1, 2)
	in := strings.NewReader(".profile q(x) :- R(x, y)\n.quit\n")
	var out strings.Builder
	repl(db, "diss", 100, 1, 0, in, &out)
	if !strings.Contains(out.String(), "scan R(x, y)") {
		t.Errorf("profile output missing scan:\n%s", out.String())
	}
}

func TestREPLInfluenceAndMethods(t *testing.T) {
	db := lapushdb.Open()
	r, _ := db.CreateRelation("R", "x", "y")
	_ = r.Insert(0.5, 1, 2)
	in := strings.NewReader(strings.Join([]string{
		".influence q(x) :- R(x, y)",
		".method obdd",
		"q(x) :- R(x, y)",
		".method kl",
		"q(x) :- R(x, y)",
		".quit",
	}, "\n"))
	var out strings.Builder
	repl(db, "diss", 200, 1, 0, in, &out)
	got := out.String()
	for _, want := range []string{"∂P/∂p", "method: obdd", "method: kl", "0.500000"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q:\n%s", want, got)
		}
	}
}
