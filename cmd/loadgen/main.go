// Command loadgen is the standing load harness: it drives mixed
// workloads (point /v1/query ranks, anytime epsilon queries,
// /v1/rank_batch, an ingest mix that exercises the COW store and
// cache invalidation, and a replica_read mix that ranks on a read
// replica while the ingest churn runs on the primary) against a
// lapushd instance — a live one via -addr (plus -replica-addr), or a
// hermetic in-process one via -hermetic, which boots a WAL-tailing
// primary+replica pair whenever a replica workload is selected — over
// deterministic seeded chain/star/TPC-H-shaped datasets, and records
// ops, per-status error counts, and p50/p95/p99 latencies into the
// versioned BENCH_<rev>.json trajectory schema.
//
// The special "failover" workload (hermetic only, opt-in) boots a
// dedicated primary+replica pair, kills the primary abruptly mid-run,
// promotes the replica through POST /v1/promote with the min_seq
// guard, re-points writers at the promoted node, and records the
// measured write/read availability gaps and promotion latency in the
// result's metrics map.
//
// Usage:
//
//	loadgen -hermetic -rev $(git rev-parse --short HEAD)
//	loadgen -addr http://127.0.0.1:8080 -workloads point,batch -duration 30s
//	loadgen -addr http://primary:8080 -replica-addr http://replica:8080 -workloads replica_read
//	loadgen -hermetic -workloads failover -duration 6s
//	loadgen -hermetic -duration 1s -warmup 200ms -max-error-rate 0.05 -out bench-smoke.json
//
// Each workload runs warmup → timed window at -c concurrency; request
// streams are pure functions of (-seed, index), so two runs with the
// same flags issue byte-identical request sequences. With thresholds
// set (-max-error-rate, -max-p99, -min-ops) the process exits non-zero
// on a violation, which is how CI's smoke job fails on error-rate or
// gross latency blowups without flaking on scheduler noise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"lapushdb/internal/bench"
	"lapushdb/internal/server"
)

func main() {
	addr := flag.String("addr", "", "base URL of a live lapushd (e.g. http://127.0.0.1:8080)")
	replicaAddr := flag.String("replica-addr", "", "base URL of a read replica of -addr; replica-targeted requests (replica_read mix) go here")
	hermetic := flag.Bool("hermetic", false, "spin up an in-process lapushd over an ephemeral store instead of targeting -addr (plus a WAL-tailing replica when a replica workload is selected)")
	workloads := flag.String("workloads", strings.Join(bench.WorkloadNames(), ","), "comma-separated workload mixes to run; add \"failover\" (hermetic only) for the scripted crash-failover availability run")
	concurrency := flag.Int("c", 8, "concurrent workers per workload")
	warmup := flag.Duration("warmup", time.Second, "unrecorded warmup per workload")
	duration := flag.Duration("duration", 5*time.Second, "timed window per workload")
	seed := flag.Int64("seed", 1, "workload stream seed (same seed => byte-identical request streams)")
	rev := flag.String("rev", "dev", "revision label for the report (use the git short hash)")
	out := flag.String("out", "", "output JSON path (default BENCH_<rev>.json; merged if it exists)")
	notes := flag.String("notes", "", "free-form note recorded in the report")
	scale := flag.Float64("scale", 1, "dataset scale factor over the default smoke sizes")
	maxErrorRate := flag.Float64("max-error-rate", 0, "fail if any workload's error rate exceeds this (0 disables)")
	maxP99 := flag.Duration("max-p99", 0, "fail if any workload's p99 exceeds this (0 disables)")
	minOps := flag.Int64("min-ops", 0, "fail if any workload completes fewer ops (0 disables)")
	flag.Parse()

	if (*addr == "") == !*hermetic {
		fail("exactly one of -addr or -hermetic is required")
	}
	wantReplica, wantFailover := false, false
	var regular []string
	for _, name := range strings.Split(*workloads, ",") {
		switch name = strings.TrimSpace(name); name {
		case "":
		case "replica_read":
			wantReplica = true
			regular = append(regular, name)
		case "failover":
			// The failover workload kills its primary mid-run, so it
			// always gets a dedicated hermetic pair after the regular
			// mixes finish.
			wantFailover = true
		default:
			regular = append(regular, name)
		}
	}
	if wantFailover && !*hermetic {
		fail("the failover workload kills its primary mid-run; it only runs hermetically (-hermetic), not against a live -addr")
	}
	base, replicaBase := *addr, *replicaAddr
	if *hermetic {
		if replicaBase != "" {
			fail("-replica-addr targets a live replica; it cannot combine with -hermetic")
		}
		if wantReplica {
			pair, err := server.NewHermeticPair(server.Config{})
			if err != nil {
				fail("hermetic pair: %v", err)
			}
			defer pair.Close()
			base, replicaBase = pair.Primary.URL, pair.Replica.URL
			fmt.Fprintf(os.Stderr, "loadgen: hermetic lapushd primary at %s, replica at %s\n", base, replicaBase)
		} else if len(regular) > 0 {
			ts := server.NewHermetic(server.Config{})
			defer ts.Close()
			base = ts.URL
			fmt.Fprintf(os.Stderr, "loadgen: hermetic lapushd at %s\n", base)
		}
	}
	if wantReplica && replicaBase == "" {
		fmt.Fprintf(os.Stderr, "loadgen: no -replica-addr; replica_read reads fall back to the primary\n")
	}
	base = strings.TrimRight(base, "/")
	replicaBase = strings.TrimRight(replicaBase, "/")

	cfg := bench.Config{Seed: *seed}.WithDefaults()
	if *scale != 1 {
		if *scale <= 0 {
			fail("-scale must be positive")
		}
		cfg.ChainN = scaleInt(cfg.ChainN, *scale)
		cfg.StarN = scaleInt(cfg.StarN, *scale)
		cfg.Suppliers = scaleInt(cfg.Suppliers, *scale)
		cfg.Parts = scaleInt(cfg.Parts, *scale)
	}

	var wls []bench.Workload
	for _, name := range regular {
		wl, err := bench.ByName(cfg, name)
		if err != nil {
			fail("%v", err)
		}
		wls = append(wls, wl)
	}
	if len(wls) == 0 && !wantFailover {
		fail("no workloads selected")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rc := bench.RunConfig{
		BaseURL:     base,
		ReplicaURL:  replicaBase,
		Concurrency: *concurrency,
		Warmup:      *warmup,
		Duration:    *duration,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		},
	}

	th := bench.Thresholds{MaxErrorRate: *maxErrorRate, MaxP99: *maxP99, MinOps: *minOps}
	var results []bench.WorkloadResult
	var violations []error
	if len(wls) > 0 {
		setup := bench.SetupRequests(cfg)
		fmt.Fprintf(os.Stderr, "loadgen: seeding dataset (%d setup requests, seed %d, scale %g)\n", len(setup), *seed, *scale)
		if err := bench.Setup(ctx, rc, setup); err != nil {
			fail("%v", err)
		}
		if replicaBase != "" {
			wctx, cancel := context.WithTimeout(ctx, time.Minute)
			err := bench.WaitConverged(wctx, rc)
			cancel()
			if err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "loadgen: replica converged on the seeded dataset\n")
		}
		for _, wl := range wls {
			res, err := bench.Run(ctx, rc, wl)
			if err != nil {
				fail("workload %s: %v", wl.Name, err)
			}
			results = append(results, res)
			fmt.Fprintf(os.Stderr,
				"loadgen: %-8s ops=%d (%.1f/s) errors=%d p50=%.1fms p95=%.1fms p99=%.1fms status=%v\n",
				res.Name, res.Ops, res.OpsPerSec, res.Errors, res.P50MS, res.P95MS, res.P99MS, res.Status)
			if err := th.Check(res); err != nil {
				violations = append(violations, err)
			}
		}
	}

	if wantFailover {
		// A dedicated pair: the workload kills the primary, so nothing
		// else can share it. Thresholds deliberately do not apply — the
		// kill window makes a burst of errors part of the measurement.
		pair, err := server.NewHermeticPair(server.Config{})
		if err != nil {
			fail("failover pair: %v", err)
		}
		defer pair.Close()
		frc := rc
		frc.BaseURL, frc.ReplicaURL = pair.Primary.URL, pair.Replica.URL
		fmt.Fprintf(os.Stderr, "loadgen: failover pair: primary %s, replica %s\n", frc.BaseURL, frc.ReplicaURL)
		if err := bench.Setup(ctx, frc, bench.SetupRequests(cfg)); err != nil {
			fail("failover setup: %v", err)
		}
		wctx, cancel := context.WithTimeout(ctx, time.Minute)
		err = bench.WaitConverged(wctx, frc)
		cancel()
		if err != nil {
			fail("%v", err)
		}
		res, err := bench.RunFailover(ctx, frc, bench.FailoverHooks{Kill: pair.KillPrimary})
		if err != nil {
			fail("failover workload: %v", err)
		}
		results = append(results, res)
		fmt.Fprintf(os.Stderr,
			"loadgen: %-8s ops=%d (%.1f/s) errors=%d write_gap=%.1fms read_gap=%.1fms promote=%.1fms stranded=%.0f status=%v\n",
			res.Name, res.Ops, res.OpsPerSec, res.Errors,
			res.Metrics["write_gap_ms"], res.Metrics["read_gap_ms"], res.Metrics["promote_ms"], res.Metrics["stranded_acked_writes"], res.Status)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + *rev + ".json"
	}
	note := *notes
	if note == "" {
		note = fmt.Sprintf("loadgen seed %d scale %g, c=%d, warmup %s, duration %s, workloads %s",
			*seed, *scale, *concurrency, *warmup, *duration, *workloads)
	}
	err := bench.UpdateFile(path, func(r *bench.Report) {
		r.Rev = *rev
		r.Date = time.Now().UTC().Format("2006-01-02")
		r.Go = runtime.Version()
		if cpu := bench.CPUModel(); cpu != "" {
			r.CPU = cpu
		}
		r.Notes = note
		for _, res := range results {
			r.ReplaceWorkload(res)
		}
	})
	if err != nil {
		fail("write report: %v", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", path)

	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "loadgen: THRESHOLD VIOLATION: %v\n", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func scaleInt(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 1 {
		v = 1
	}
	return v
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
