// Command experiments reproduces the tables and figures of the paper's
// evaluation section. Each figure prints as an aligned text table with
// the same rows/series the paper reports.
//
// Usage:
//
//	experiments -fig 2            # Figure 2 (plan counts)
//	experiments -fig 5a           # 4-chain run times
//	experiments -fig all          # everything
//	experiments -fig 5i -reps 20 -scale 0.05
//
// The -scale flag sets the TPC-H scale factor (the paper used 1.0; the
// default 0.05 reproduces every shape in minutes). -maxn caps the
// tuples-per-table axis of the Setup 2 experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lapushdb/internal/cq"
	"lapushdb/internal/exp"
	"lapushdb/internal/viz"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 1a, 1b (DOT), 2, 3, 5a..5p, xa/xb/xc (extras), or all")
	scale := flag.Float64("scale", 0.05, "TPC-H scale factor (paper: 1.0)")
	reps := flag.Int("reps", 10, "repetitions for ranking experiments")
	maxn := flag.Int("maxn", 100000, "max tuples per table for run-time sweeps")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := exp.Config{Seed: *seed, Scale: *scale, Reps: *reps, MaxN: *maxn}

	// Figures 1 and 3 are illustrations, not measurements: emit Graphviz
	// DOT for Example 17's dissociation lattice (1a) and minimal plans
	// (1b), and the augmented incidence matrices of Example 23 with
	// deterministic relations (3).
	switch *fig {
	case "1a", "1b":
		q := cq.MustParse("q() :- R(x), S(x), T(x, y), U(y)")
		if *fig == "1a" {
			fmt.Print(viz.LatticeDOT(q))
		} else {
			fmt.Print(viz.MinimalPlansDOT(q, nil))
		}
		return
	case "3":
		q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
		fmt.Println("(a) no schema knowledge:")
		fmt.Println(viz.LatticeMatrices(q, nil))
		fmt.Println("(b) T deterministic:")
		fmt.Println(viz.LatticeMatrices(q, map[string]bool{"T": true}))
		fmt.Println("(c) R and T deterministic:")
		fmt.Println(viz.LatticeMatrices(q, map[string]bool{"R": true, "T": true}))
		return
	}

	figures := map[string]func() *exp.Table{
		"2":  func() *exp.Table { return exp.Fig2(7, 8) },
		"5a": func() *exp.Table { return exp.Fig5a(cfg) },
		"5b": func() *exp.Table { return exp.Fig5b(cfg) },
		"5c": func() *exp.Table { return exp.Fig5c(cfg) },
		"5d": func() *exp.Table { return exp.Fig5d(cfg) },
		"5e": func() *exp.Table { return exp.Fig5e(cfg) },
		"5f": func() *exp.Table { return exp.Fig5f(cfg) },
		"5g": func() *exp.Table { return exp.Fig5g(cfg) },
		"5h": func() *exp.Table { return exp.Fig5h(cfg) },
		"5i": func() *exp.Table { return exp.Fig5i(cfg) },
		"5j": func() *exp.Table { return exp.Fig5j(cfg) },
		"5k": func() *exp.Table { return exp.Fig5k(cfg) },
		"5l": func() *exp.Table { return exp.Fig5l(cfg) },
		"5m": func() *exp.Table { return exp.Fig5m(cfg) },
		"5n": func() *exp.Table { return exp.Fig5n(cfg) },
		"5o": func() *exp.Table { return exp.Fig5o(cfg) },
		"5p": func() *exp.Table { return exp.Fig5p(cfg) },
		// Supplementary experiments beyond the paper.
		"xa": func() *exp.Table { return exp.ExtraAblation(cfg) },
		"xb": func() *exp.Table { return exp.ExtraCorrelation(cfg) },
		"xc": func() *exp.Table { return exp.ExtraExactMethods(cfg) },
	}
	order := []string{"2", "5a", "5b", "5c", "5d", "5e", "5f", "5g", "5h", "5i", "5j", "5k", "5l", "5m", "5n", "5o", "5p", "xa", "xb", "xc"}

	run := func(name string) {
		f, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want 1a, 1b, 2, 5a..5p, xa, xb, all)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		t := f()
		fmt.Println(t.String())
		fmt.Printf("(%s computed in %.1fs)\n\n", t.ID, time.Since(start).Seconds())
	}

	if *fig == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*fig)
}
