package lapushdb

// Property tests of the anytime evaluator at the public-API level: on
// the chain/star/TPC-H differential shapes, every refinement snapshot
// must sandwich the exact probability (lower <= exact <= upper),
// intervals may only tighten from one snapshot to the next, and results
// are bit-identical across Workers settings. Run under -race these also
// exercise the staged evaluation for data races.

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"lapushdb/internal/anytime"
	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/engine/oracle"
	"lapushdb/internal/workload"
)

// exactByValues ranks the query exactly and indexes the probabilities
// by answer values, as the reference for the sandwich property.
func exactByValues(t *testing.T, db *DB, query string) map[string]float64 {
	t.Helper()
	answers, err := db.Rank(query, &Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]float64, len(answers))
	for _, a := range answers {
		m[stringsKey(a.Values)] = a.Score
	}
	return m
}

// sandwichWorkload runs the anytime evaluation on one workload shape
// and asserts, at every refinement snapshot: intervals are well-formed,
// they contain the exact probability, and they only tighten.
func sandwichWorkload(t *testing.T, label string, edb *engine.DB, query string, eps float64) {
	t.Helper()
	db := fromEngineDB(t, edb)
	exact := exactByValues(t, db, query)

	type iv struct{ lo, hi float64 }
	prev := map[string]iv{}
	snapshots := 0
	// The MC cap keeps the sampling stage cheap; the exact stage then
	// collapses whatever sampling left wide, so convergence still holds.
	opts := &AnytimeOptions{Epsilon: eps, Seed: 11, MCMaxSamples: 2048}
	opts.onStage = func(s anytime.Snapshot) {
		snapshots++
		for _, a := range s.Answers {
			key := stringsKey(db.decode(a.Key))
			ex, ok := exact[key]
			if !ok {
				t.Fatalf("%s: stage %s produced unknown answer %v", label, s.Stage, db.decode(a.Key))
			}
			if a.Lower < 0 || a.Upper > 1 || a.Lower > a.Upper+1e-12 {
				t.Fatalf("%s: stage %s: malformed interval [%g, %g]", label, s.Stage, a.Lower, a.Upper)
			}
			if a.Lower > ex+1e-9 || ex > a.Upper+1e-9 {
				t.Fatalf("%s: stage %s: sandwich violated: exact %g outside [%g, %g]", label, s.Stage, ex, a.Lower, a.Upper)
			}
			if p, ok := prev[key]; ok && (a.Lower < p.lo-1e-12 || a.Upper > p.hi+1e-12) {
				t.Fatalf("%s: stage %s: interval widened: [%g, %g] after [%g, %g]", label, s.Stage, a.Lower, a.Upper, p.lo, p.hi)
			}
			prev[key] = iv{a.Lower, a.Upper}
		}
	}
	res, err := db.RankAnytime(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if snapshots == 0 {
		t.Fatalf("%s: no refinement snapshots observed", label)
	}
	if !res.Converged || res.Degraded != "" {
		t.Fatalf("%s: expected convergence, got converged=%v degraded=%q width=%g", label, res.Converged, res.Degraded, res.Width)
	}
	if len(res.Answers) != len(exact) {
		t.Fatalf("%s: %d interval answers vs %d exact", label, len(res.Answers), len(exact))
	}
	for _, a := range res.Answers {
		if a.Upper-a.Lower > eps+1e-12 {
			t.Fatalf("%s: answer %v not within epsilon: [%g, %g]", label, a.Values, a.Lower, a.Upper)
		}
		ex := exact[stringsKey(a.Values)]
		if a.Lower > ex+1e-9 || ex > a.Upper+1e-9 {
			t.Fatalf("%s: final sandwich violated for %v: exact %g outside [%g, %g]", label, a.Values, ex, a.Lower, a.Upper)
		}
	}
}

func TestAnytimeSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	t.Run("chain3", func(t *testing.T) {
		edb, q := workload.Chain(3, 500, 70, 0.5, rng)
		sandwichWorkload(t, "chain3", edb, q.String(), 0.05)
	})
	t.Run("star3", func(t *testing.T) {
		// The star query is Boolean: its single answer's lineage is one
		// hard DNF over the whole instance, and both the exact reference
		// and the collapse stage are exponential in the worst case — keep
		// the instance small.
		edb, q := workload.Star(3, 40, 12, 0.5, rng)
		sandwichWorkload(t, "star3", edb, q.String(), 0.05)
	})
	t.Run("tpch", func(t *testing.T) {
		tp := workload.NewTPCH(0.01, 0.1, rng)
		sandwichWorkload(t, "tpch", tp.DB, tp.Query(tp.Suppliers, "%red%").String(), 0.05)
	})
}

// TestAnytimeOracleBoundsDifferential pins the upper bounds the anytime
// sandwich refines: the dissociation plan scores feeding the anytime
// evaluator are bit-identical between the columnar executor and the
// retained row-at-a-time oracle at Workers 1 and 4, on the sandwich's
// workload shapes.
func TestAnytimeOracleBoundsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	chainDB, chainQ := workload.Chain(3, 500, 70, 0.5, rng)
	starDB, starQ := workload.Star(3, 40, 12, 0.5, rng)
	tp := workload.NewTPCH(0.01, 0.1, rng)
	for _, tc := range []struct {
		label string
		edb   *engine.DB
		q     string
	}{
		{"chain3", chainDB, chainQ.String()},
		{"star3", starDB, starQ.String()},
		{"tpch", tp.DB, tp.Query(tp.Suppliers, "%red%").String()},
	} {
		q := cq.MustParse(tc.q)
		plans := core.MinimalPlans(q, nil)
		for _, w := range []int{1, 4} {
			opts := engine.Options{Workers: w}
			got := engine.EvalPlans(tc.edb, q, plans, opts)
			want := oracle.EvalPlans(tc.edb, q, plans, opts)
			if got.Len() != want.Len() {
				t.Fatalf("%s/w=%d: %d rows vs oracle %d", tc.label, w, got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				gr, wr := got.Row(i), want.Row(i)
				for j := range wr {
					if gr[j] != wr[j] {
						t.Fatalf("%s/w=%d: row %d differs: %v vs %v", tc.label, w, i, gr, wr)
					}
				}
				if math.Float64bits(got.Score(i)) != math.Float64bits(want.Score(i)) {
					t.Fatalf("%s/w=%d: row %d bound bits differ: %v vs oracle %v",
						tc.label, w, i, got.Score(i), want.Score(i))
				}
			}
		}
	}
}

// TestAnytimeWorkerDeterminism pins the bit-identity contract: the
// whole anytime result — values, bounds, convergence flags, stage
// stats — is identical at Workers 1 and 4 for a fixed seed, because
// sampler streams are derived from answer keys, not iteration order.
func TestAnytimeWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	edb, q := workload.Chain(3, 1200, 150, 0.5, rng)
	db := fromEngineDB(t, edb)
	query := q.String()
	base, err := db.RankAnytime(query, &AnytimeOptions{Epsilon: 0.02, Workers: 1, Seed: 99, MCMaxSamples: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Answers) == 0 {
		t.Fatal("no answers")
	}
	res, err := db.RankAnytime(query, &AnytimeOptions{Epsilon: 0.02, Workers: 4, Seed: 99, MCMaxSamples: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged != base.Converged || res.Width != base.Width || res.MCSamples != base.MCSamples {
		t.Fatalf("result metadata differs across workers: %+v vs %+v", res, base)
	}
	if len(res.Answers) != len(base.Answers) {
		t.Fatalf("%d answers vs %d", len(res.Answers), len(base.Answers))
	}
	for i := range base.Answers {
		b, r := base.Answers[i], res.Answers[i]
		if b.Lower != r.Lower || b.Upper != r.Upper || b.Converged != r.Converged {
			t.Fatalf("answer %d differs: [%v, %v] vs [%v, %v]", i, r.Lower, r.Upper, b.Lower, b.Upper)
		}
		for j := range b.Values {
			if b.Values[j] != r.Values[j] {
				t.Fatalf("answer %d values differ: %v vs %v", i, r.Values, b.Values)
			}
		}
	}
}

// TestAnytimeDeadlineDegrades forces the deadline to fire after the
// first refinement step: the evaluation must return the best-so-far
// intervals with Degraded="deadline" instead of an error.
func TestAnytimeDeadlineDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	edb, q := workload.Chain(3, 900, 120, 0.5, rng)
	db := fromEngineDB(t, edb)
	// Warm up lazily built indexes so the first refinement step reliably
	// fits inside the deadline below.
	if _, err := db.RankAnytime(q.String(), &AnytimeOptions{Epsilon: 0.9}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	opts := &AnytimeOptions{Epsilon: 0.0001, Seed: 1}
	slept := false
	opts.onStage = func(anytime.Snapshot) {
		if !slept {
			slept = true
			time.Sleep(500 * time.Millisecond) // outlive the deadline after step one
		}
	}
	res, err := db.RankAnytimeContext(ctx, q.String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != "deadline" || res.Converged {
		t.Fatalf("want degraded deadline, got converged=%v degraded=%q", res.Converged, res.Degraded)
	}
	if len(res.Answers) == 0 {
		t.Fatal("degraded result lost its answers")
	}
	for _, a := range res.Answers {
		if a.Lower < 0 || a.Upper > 1 || a.Lower > a.Upper {
			t.Fatalf("malformed degraded interval [%g, %g]", a.Lower, a.Upper)
		}
	}
}

// TestAnytimeCancelErrors pins the complementary contract: plain
// cancellation means the caller no longer wants the result, so it is a
// hard error even after refinement steps completed.
func TestAnytimeCancelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	edb, q := workload.Chain(3, 900, 120, 0.5, rng)
	db := fromEngineDB(t, edb)
	ctx, cancel := context.WithCancel(context.Background())
	opts := &AnytimeOptions{Epsilon: 0.0001, Seed: 1}
	opts.onStage = func(anytime.Snapshot) { cancel() }
	res, err := db.RankAnytimeContext(ctx, q.String(), opts)
	if err == nil {
		t.Fatalf("want cancellation error, got result converged=%v degraded=%q", res.Converged, res.Degraded)
	}
}

// TestAnytimeBudgetDegrades finds, by bisection, the smallest row
// budget at which the first refinement step completes — there, a later
// plan must exhaust the budget and the evaluation must degrade with
// valid intervals rather than fail.
func TestAnytimeBudgetDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	edb, q := workload.Chain(3, 900, 120, 0.5, rng)
	db := fromEngineDB(t, edb)
	query := q.String()
	// Small MC caps keep the bisection's many full evaluations cheap; the
	// property under test is the budget handling, not bound quality.
	eval := func(budget int) (*AnytimeResult, error) {
		return db.RankAnytime(query, &AnytimeOptions{Epsilon: 0.0001, Seed: 1, MaxIntermediateRows: budget, MCBatch: 64, MCMaxSamples: 256})
	}
	lo, hi := 1, 1<<22 // lo always fails, hi always completes
	if _, err := eval(lo); err == nil {
		t.Fatal("budget of 1 row unexpectedly succeeded")
	}
	if res, err := eval(hi); err != nil || res.Degraded != "" {
		t.Fatalf("unbudgeted run: err=%v degraded=%q", err, res.Degraded)
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if _, err := eval(mid); err != nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	res, err := eval(hi)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != "budget" || res.Converged {
		t.Fatalf("minimal viable budget %d: want degraded budget, got converged=%v degraded=%q (plans %d/%d)",
			hi, res.Converged, res.Degraded, res.PlansEvaluated, res.PlansTotal)
	}
	if res.PlansEvaluated < 1 {
		t.Fatalf("degraded without a completed refinement step: %+v", res)
	}
	for _, a := range res.Answers {
		if a.Lower < 0 || a.Upper > 1 || a.Lower > a.Upper {
			t.Fatalf("malformed degraded interval [%g, %g]", a.Lower, a.Upper)
		}
	}
}

// TestRankTopKAnytime checks the bound-pruning top-k: with a tight
// epsilon the surviving answers must be exactly RankTopK's exact top-k,
// in the same order.
func TestRankTopKAnytime(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	edb, q := workload.Chain(3, 900, 120, 0.5, rng)
	db := fromEngineDB(t, edb)
	query := q.String()
	const k = 5
	want, err := db.RankTopK(query, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.RankTopKAnytime(context.Background(), query, k, &AnytimeOptions{Epsilon: 0.0001, Seed: 3, MCBatch: 64, MCMaxSamples: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("top-k did not converge: width %g", res.Width)
	}
	if len(res.Answers) != len(want) {
		t.Fatalf("%d answers vs %d", len(res.Answers), len(want))
	}
	for i, a := range res.Answers {
		if stringsKey(a.Values) != stringsKey(want[i].Values) {
			t.Fatalf("rank %d: %v vs exact top-k %v", i, a.Values, want[i].Values)
		}
		if want[i].Score < a.Lower-1e-9 || want[i].Score > a.Upper+1e-9 {
			t.Fatalf("rank %d: exact %g outside [%g, %g]", i, want[i].Score, a.Lower, a.Upper)
		}
	}
}

// TestValidateEpsilon pins the shared epsilon validation used by both
// the library and the server.
func TestValidateEpsilon(t *testing.T) {
	for _, eps := range []float64{0, 0.001, 0.5, 0.999} {
		if err := ValidateEpsilon(eps); err != nil {
			t.Fatalf("ValidateEpsilon(%v) = %v", eps, err)
		}
	}
	bad := []float64{-0.001, 1, 1.5}
	bad = append(bad, nan())
	for _, eps := range bad {
		if err := ValidateEpsilon(eps); err == nil {
			t.Fatalf("ValidateEpsilon(%v) accepted", eps)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
