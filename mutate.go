package lapushdb

import (
	"fmt"
	"strconv"

	"lapushdb/internal/engine"
)

// Mutation support for the versioned store (internal/store): a
// copy-on-write clone plus tuple-addressed updates and deletes. The
// store builds each new database version by cloning the published one
// and applying a mutation batch to the private copy.

// CloneCOW returns a copy-on-write copy of the database: storage is
// shared with the receiver until the copy mutates it, so cloning is
// cheap and probability-only updates touch just the probability
// columns. After cloning, the receiver must be treated as frozen for
// mutation; both copies remain safe to read concurrently.
func (d *DB) CloneCOW() *DB { return &DB{db: d.db.CloneCOW()} }

// Deterministic reports whether the relation's tuples are all certain.
func (r *Relation) Deterministic() bool { return r.r.Deterministic }

// ProbAt returns the probability of the i-th tuple.
func (r *Relation) ProbAt(i int) (float64, error) {
	if i < 0 || i >= r.r.Len() {
		return 0, fmt.Errorf("lapushdb: %s has no tuple %d", r.r.Name, i)
	}
	return r.r.Prob(i), nil
}

// Find returns the index of the first tuple equal to the given values
// (string, int, or int64, as in Insert), or ok=false. The lookup is
// read-only: probing for values that occur nowhere never grows the
// string dictionary.
func (r *Relation) Find(values ...any) (int, bool) {
	if len(values) != len(r.r.Cols) {
		return 0, false
	}
	tuple := make([]engine.Value, len(values))
	for i, v := range values {
		ev, ok := r.lookupValue(v)
		if !ok {
			return 0, false
		}
		tuple[i] = ev
	}
	if i := r.r.FindRow(tuple); i >= 0 {
		return i, true
	}
	return 0, false
}

// lookupValue resolves one external value read-only (see engine
// LookupConst); ok=false means the value occurs nowhere in the
// database.
func (r *Relation) lookupValue(v any) (engine.Value, bool) {
	switch t := v.(type) {
	case string:
		return r.db.LookupConst(t)
	case int:
		return r.lookupInt(int64(t))
	case int64:
		return r.lookupInt(t)
	default:
		return 0, false
	}
}

func (r *Relation) lookupInt(i int64) (engine.Value, bool) {
	if i >= 0 {
		return engine.Value(i), true
	}
	return r.db.LookupConst(strconv.FormatInt(i, 10))
}

// SetProbAt updates the probability of the i-th tuple (and its lineage
// variable). Deterministic relations reject updates.
func (r *Relation) SetProbAt(i int, p float64) error {
	if r.r.Deterministic {
		return fmt.Errorf("lapushdb: cannot set probability on deterministic relation %s", r.r.Name)
	}
	if i < 0 || i >= r.r.Len() {
		return fmt.Errorf("lapushdb: %s has no tuple %d", r.r.Name, i)
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("lapushdb: probability %v out of [0, 1]", p)
	}
	r.r.SetProb(i, p)
	return nil
}

// DeleteAt removes the i-th tuple. The tuple's lineage variable stays
// allocated (unreferenced), keeping variable-id assignment — and WAL
// replay — deterministic.
func (r *Relation) DeleteAt(i int) error {
	if i < 0 || i >= r.r.Len() {
		return fmt.Errorf("lapushdb: %s has no tuple %d", r.r.Name, i)
	}
	r.r.DeleteRow(i)
	return nil
}
