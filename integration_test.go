package lapushdb

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestIntegrationTPCH is the end-to-end safety net: a moderate TPC-H
// instance queried through the public API with every method and every
// optimization combination, checking the paper's invariants — upper
// bounds, exact agreement across exact methods, and ranking coherence.
func TestIntegrationTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(99))
	db := Open()
	sup, _ := db.CreateRelation("Supplier", "s", "a")
	ps, _ := db.CreateRelation("Partsupp", "s", "u")
	part, _ := db.CreateRelation("Part", "u", "n")
	if err := sup.CreateRangeIndex("s"); err != nil {
		t.Fatal(err)
	}
	colors := []string{"red", "green", "blue", "ivory", "plum"}
	nSupp, nPart := 120, 300
	for s := 1; s <= nSupp; s++ {
		if err := sup.Insert(rng.Float64()*0.4, s, rng.Intn(25)); err != nil {
			t.Fatal(err)
		}
	}
	for u := 1; u <= nPart; u++ {
		name := colors[rng.Intn(len(colors))] + " " + colors[rng.Intn(len(colors))]
		if err := part.Insert(rng.Float64()*0.4, u, name); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := ps.Insert(rng.Float64()*0.4, 1+rng.Intn(nSupp), u); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := "Q(a) :- Supplier(s, a), Partsupp(s, u), Part(u, n), s <= 90, n like '%red%'"

	exactAns, err := db.Rank(q, &Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	obddAns, err := db.Rank(q, &Options{Method: ExactOBDD, ExactBudget: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	scoreOf := func(as []Answer, v string) (float64, bool) {
		for _, a := range as {
			if a.Values[0] == v {
				return a.Score, true
			}
		}
		return 0, false
	}
	for i, a := range exactAns {
		ob, ok := scoreOf(obddAns, a.Values[0])
		if !ok || math.Abs(ob-a.Score) > 1e-9 {
			t.Errorf("answer %d: DPLL %v vs OBDD %v", i, a.Score, ob)
		}
	}

	// Every dissociation configuration upper-bounds exact and produces
	// identical scores to every other configuration.
	var baseline []Answer
	for i, opts := range []*Options{
		{},
		{DisableOpt1: true},
		{DisableOpt2: true},
		{DisableOpt3: true},
		{Parallel: true, Workers: 3},
		{CostBasedJoins: true},
		{DisableOpt1: true, DisableOpt2: true, DisableOpt3: true},
	} {
		diss, err := db.Rank(q, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if i == 0 {
			baseline = diss
		}
		if len(diss) != len(baseline) {
			t.Fatalf("opts %+v: %d answers vs %d", opts, len(diss), len(baseline))
		}
		for _, a := range diss {
			b, ok := scoreOf(baseline, a.Values[0])
			if !ok || math.Abs(a.Score-b) > 1e-9 {
				t.Errorf("opts %+v: %s score %v vs baseline %v", opts, a.Values[0], a.Score, b)
			}
			ex, ok := scoreOf(exactAns, a.Values[0])
			if !ok {
				t.Errorf("opts %+v: answer %s not in exact results", opts, a.Values[0])
			} else if a.Score < ex-1e-9 {
				t.Errorf("opts %+v: %s bound %v below exact %v", opts, a.Values[0], a.Score, ex)
			}
		}
	}

	// Top-k agrees with the full exact ranking.
	top, err := db.RankTopK(q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range top {
		if math.Abs(top[i].Score-exactAns[i].Score) > 1e-9 {
			t.Errorf("top-k position %d: %v vs %v", i, top[i], exactAns[i])
		}
	}

	// Influence explains the top answer with positive sensitivities.
	infl, err := db.Influence(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(infl) == 0 || len(infl[0].Tuples) == 0 {
		t.Fatal("no influence results")
	}
	if infl[0].Tuples[0].Influence <= 0 {
		t.Errorf("top influence non-positive: %+v", infl[0].Tuples[0])
	}
	if !strings.Contains(infl[0].Tuples[0].Tuple, "(") {
		t.Errorf("influence tuple label not rendered: %q", infl[0].Tuples[0].Tuple)
	}

	// Karp-Luby tracks exact within MC noise on the top answers.
	kl, err := db.Rank(q, &Options{Method: KarpLuby, MCSamples: 50000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && i < len(exactAns); i++ {
		got, ok := scoreOf(kl, exactAns[i].Values[0])
		if !ok || math.Abs(got-exactAns[i].Score) > 0.02 {
			t.Errorf("KL %s: %v vs exact %v", exactAns[i].Values[0], got, exactAns[i].Score)
		}
	}
}
