package lapushdb

import (
	"math"
	"testing"
)

func TestQueryBuilderMatchesString(t *testing.T) {
	db := movieDB(t)
	b := NewQuery("q").
		Head("user").
		Atom("Likes", "user", "movie").
		Atom("Stars", "movie", "actor").
		Atom("Fan", "actor")
	fromBuilder, err := db.RankQuery(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	fromString, err := db.Rank("q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromBuilder) != len(fromString) {
		t.Fatalf("answers %d vs %d", len(fromBuilder), len(fromString))
	}
	for i := range fromString {
		if fromBuilder[i].Values[0] != fromString[i].Values[0] ||
			math.Abs(fromBuilder[i].Score-fromString[i].Score) > 1e-12 {
			t.Errorf("answer %d: %+v vs %+v", i, fromBuilder[i], fromString[i])
		}
	}
}

func TestQueryBuilderConstantsAndPredicates(t *testing.T) {
	db := Open()
	s, _ := db.CreateRelation("S", "id", "name", "kind")
	_ = s.Insert(0.5, 1, "red apple", "fruit")
	_ = s.Insert(0.5, 2, "green pear", "fruit")
	_ = s.Insert(0.5, 30, "red chair", "furniture")

	b := NewQuery("q").
		Head("name").
		Atom("S", "id", "name", Const("fruit")).
		Where("id", "<=", 10).
		Where("name", "like", "%red%")
	answers, err := db.RankQuery(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Values[0] != "red apple" {
		t.Errorf("answers = %+v", answers)
	}
}

func TestQueryBuilderExplain(t *testing.T) {
	db := movieDB(t)
	b := NewQuery("q").Head("movie").Atom("Stars", "movie", "actor").Atom("Fan", "actor")
	ex, err := db.ExplainQuery(b)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Safe || len(ex.Plans) != 1 {
		t.Errorf("safe=%v plans=%d", ex.Safe, len(ex.Plans))
	}
	if b.String() == "" {
		t.Error("String should render a valid query")
	}
}

func TestQueryBuilderErrors(t *testing.T) {
	db := movieDB(t)
	cases := []*QueryBuilder{
		NewQuery("q").Head("x"),                                       // no atoms
		NewQuery("q").Head("z").Atom("Likes", "user", "movie"),        // head var not in body
		NewQuery("q").Atom("Likes", "u", "m").Atom("Likes", "u", "m"), // self-join
		NewQuery("q").Atom("Likes", "u", 3.14),                        // bad arg type
		NewQuery("q").Atom("Likes", "u", "m").Where("u", "~", 3),      // bad operator
		NewQuery("q").Atom("Likes", "u", "m").Where("u", "<=", 1.5),   // bad const type
	}
	for i, b := range cases {
		if _, err := db.RankQuery(b, nil); err == nil {
			t.Errorf("case %d: expected error, query = %q", i, b.String())
		}
	}
}

func TestQueryBuilderAllOps(t *testing.T) {
	db := Open()
	r, _ := db.CreateRelation("R", "x")
	for i := 1; i <= 5; i++ {
		_ = r.Insert(0.5, i)
	}
	cases := []struct {
		op   string
		c    int
		want int
	}{
		{"<=", 3, 3}, {"<", 3, 2}, {">=", 3, 3}, {">", 3, 2}, {"=", 3, 1}, {"!=", 3, 4}, {"<>", 3, 4}, {"==", 3, 1},
	}
	for _, c := range cases {
		b := NewQuery("q").Head("x").Atom("R", "x").Where("x", c.op, c.c)
		as, err := db.RankQuery(b, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		if len(as) != c.want {
			t.Errorf("op %s: %d answers, want %d", c.op, len(as), c.want)
		}
	}
}
