package lapushdb

import (
	"math"
	"strings"
	"testing"
)

func TestInfluenceBasics(t *testing.T) {
	db := Open()
	r, _ := db.CreateRelation("R", "x")
	s, _ := db.CreateRelation("S", "x", "y")
	_ = r.Insert(0.5, 1)
	_ = s.Insert(0.4, 1, 4)
	_ = s.Insert(0.7, 1, 5)
	// F = R(1)·S(1,4) ∨ R(1)·S(1,5).
	infos, err := db.Influence("q() :- R(x), S(x, y)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("answers = %d", len(infos))
	}
	ai := infos[0]
	want := 0.5 * (1 - 0.6*0.3)
	if math.Abs(ai.Probability-want) > 1e-12 {
		t.Errorf("P = %v, want %v", ai.Probability, want)
	}
	if len(ai.Tuples) != 3 {
		t.Fatalf("tuples = %d, want 3", len(ai.Tuples))
	}
	// R(1) is critical: infl = P(F|R=1) − P(F|R=0) = (1−0.6·0.3) − 0 = 0.82.
	if !strings.HasPrefix(ai.Tuples[0].Tuple, "R(1)") {
		t.Errorf("most influential = %v, want R(1)", ai.Tuples[0])
	}
	if math.Abs(ai.Tuples[0].Influence-0.82) > 1e-12 {
		t.Errorf("influence of R(1) = %v, want 0.82", ai.Tuples[0].Influence)
	}
	// S(1,4): 0.5·(1−0.7)·... infl = p(R)·(1 − p(S15)) ... = 0.5·0.3 = 0.15.
	for _, ti := range ai.Tuples[1:] {
		if ti.Influence < 0 || ti.Influence > ai.Tuples[0].Influence {
			t.Errorf("influence ordering broken: %+v", ai.Tuples)
		}
	}
}

func TestInfluenceDerivativeProperty(t *testing.T) {
	// Influence equals ∂P/∂p(t): verify by finite differences on the
	// movie database.
	db := movieDB(t)
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	infos, err := db.Influence(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ai := range infos {
		if len(ai.Tuples) != 1 {
			t.Fatalf("topPerAnswer=1 violated: %d", len(ai.Tuples))
		}
		if ai.Tuples[0].Influence <= 0 {
			t.Errorf("%v: non-positive top influence %v", ai.Values, ai.Tuples[0])
		}
	}
}

func TestInfluenceErrors(t *testing.T) {
	db := movieDB(t)
	if _, err := db.Influence("bad(", 3); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := db.Influence("q(x) :- Missing(x)", 3); err == nil {
		t.Error("unknown relation should fail")
	}
}
